"""Tests for the round-replay fast path (repro.core.replay)."""

import numpy as np
import pytest

from repro.core import MachineConfig
from repro.core.quma import QuMA
from repro.core.replay import (
    JointReplayPlan,
    ReplayPlan,
    _chain_outcomes,
    replay_ineligibility,
    run_with_replay,
)
from repro.compiler.codegen import CompilerOptions
from repro.experiments.allxy import build_allxy_program
from repro.service.cache import CompileCache


def fast_config(**overrides):
    defaults = dict(qubits=(2,), trace_enabled=False, calibration_shots=20)
    defaults.update(overrides)
    return MachineConfig(**defaults)


def loop_asm(n_rounds, body="    Pulse {q2}, X90\n    Wait 4", rd=""):
    return f"""
        mov r15, 40000
        mov r1, 0
        mov r2, {n_rounds}
    Outer_Loop:
        QNopReg r15
    {body}
        MPG {{q2}}, 300
        MD {{q2}}{rd}
        addi r1, r1, 1
        bne r1, r2, Outer_Loop
        halt
    """


def run_pair(asm, n_rounds, config=None, plan=None):
    """The same program with replay off and on, on identical machines."""
    config = config if config is not None else fast_config(dcu_points=1)
    m_off = QuMA(config)
    m_off.load(asm)
    r_off = m_off.run()
    m_on = QuMA(config)
    m_on.load(asm)
    r_on, new_plan, report = run_with_replay(m_on, n_rounds, plan=plan)
    return r_off, r_on, new_plan, report


class TestReplayParity:
    def test_cold_replay_bitwise_identical(self):
        r_off, r_on, plan, report = run_pair(loop_asm(40), 40)
        assert report.fallback_reason is None
        assert report.replayed_rounds == 38
        assert plan is not None
        assert np.array_equal(r_off.averages, r_on.averages)
        assert r_on.completed
        assert r_on.measurements == r_off.measurements
        assert r_on.duration_ns == r_off.duration_ns
        assert r_on.instructions_executed == r_off.instructions_executed

    def test_warm_replay_bitwise_identical(self):
        asm = loop_asm(40)
        r_off, _, plan, _ = run_pair(asm, 40)
        r_off2, r_warm, _, report = run_pair(asm, 40, plan=plan)
        assert report.plan_hit
        assert report.replayed_rounds == 40
        assert np.array_equal(r_off.averages, r_warm.averages)
        assert r_warm.duration_ns == r_off2.duration_ns

    def test_plan_reusable_across_seeds(self):
        asm = loop_asm(24)
        _, _, plan, _ = run_pair(asm, 24)
        config = fast_config(dcu_points=1, seed=99)
        r_off, r_warm, _, report = run_pair(asm, 24, config=config, plan=plan)
        assert report.plan_hit
        assert np.array_equal(r_off.averages, r_warm.averages)

    def test_allxy_parity(self):
        cache = CompileCache()
        asm, k = cache.compiled_for(build_allxy_program(2),
                                    CompilerOptions(n_rounds=8))
        config = fast_config(dcu_points=k)
        r_off, r_on, plan, report = run_pair(asm, 8, config=config)
        assert report.fallback_reason is None
        assert r_on.replayed_rounds == 6
        assert np.array_equal(r_off.averages, r_on.averages)
        assert plan.k_points == 42

    def test_noise_free_readout_parity(self):
        from repro.readout.resonator import ReadoutParams

        config = fast_config(dcu_points=1,
                             readout=ReadoutParams(noise_std=0.0))
        r_off, r_on, _, report = run_pair(loop_asm(16), 16, config=config)
        assert report.fallback_reason is None
        assert np.array_equal(r_off.averages, r_on.averages)


class TestIneligibility:
    def test_feedback_program_takes_full_path(self):
        """A register-file-feedback program must run the full simulation
        and produce results identical to pre-replay behavior."""
        asm = loop_asm(12, rd=", r3")
        config = fast_config(dcu_points=1)
        baseline = QuMA(config)
        baseline.load(asm)
        r_base = baseline.run()

        machine = QuMA(config)
        machine.load(asm)
        r_replay, plan, report = run_with_replay(machine, 12)
        assert plan is None
        assert "feedback" in report.fallback_reason
        assert r_replay.replayed_rounds == 0
        assert np.array_equal(r_base.averages, r_replay.averages)
        assert r_base.registers == r_replay.registers
        assert r_base.duration_ns == r_replay.duration_ns
        assert r_base.instructions_executed == r_replay.instructions_executed

    def test_static_reasons(self):
        config = fast_config(dcu_points=1)
        machine = QuMA(config)
        machine.load(loop_asm(8))
        assert replay_ineligibility(machine, 8) is None
        assert "rounds" in replay_ineligibility(machine, 2)
        assert "rounds" in replay_ineligibility(machine, None)

        machine.load(loop_asm(8, rd=", r4"))
        assert "feedback" in replay_ineligibility(machine, 8)

        traced = QuMA(fast_config(dcu_points=1, trace_enabled=True))
        traced.load(loop_asm(8))
        assert "tracing" in replay_ineligibility(traced, 8)

        jittery = QuMA(fast_config(dcu_points=1, classical_jitter_ns=3))
        jittery.load(loop_asm(8))
        assert "jitter" in replay_ineligibility(jittery, 8) or \
            "timing" in replay_ineligibility(jittery, 8)

    def test_misdeclared_rounds_fall_back(self):
        """A declared n_rounds that contradicts the program's own loop
        bound must not silently replay the wrong number of rounds."""
        asm = loop_asm(16)
        config = fast_config(dcu_points=1)
        machine = QuMA(config)
        machine.load(asm)
        assert "loop bound" in replay_ineligibility(machine, 8)

        result, plan, report = run_with_replay(machine, 8)
        assert plan is None and "loop bound" in report.fallback_reason
        baseline = QuMA(config)
        baseline.load(asm)
        assert np.array_equal(baseline.run().averages, result.averages)
        assert result.measurements == 16  # the program's true round count

    def test_microprogram_call_falls_back(self):
        config = fast_config(dcu_points=1)
        machine = QuMA(config)
        machine.define_microprogram("flip", 1, "Pulse {q0}, X180\nWait 4")
        asm = loop_asm(8, body="    flip q2")
        machine.load(asm)
        assert "microprogram" in replay_ineligibility(machine, 8)

    def test_register_wider_than_cap_falls_back(self):
        qubits = tuple(range(9))
        config = MachineConfig(qubits=qubits, trace_enabled=False,
                               calibration_shots=20, dcu_points=9)
        machine = QuMA(config)
        register = ", ".join(f"q{q}" for q in qubits)
        machine.load(f"""
            mov r1, 0
            mov r2, 8
        Outer_Loop:
            Wait 4
            MPG {{{register}}}, 300
            MD {{{register}}}
            addi r1, r1, 1
            bne r1, r2, Outer_Loop
            halt
        """)
        assert "8-qubit" in replay_ineligibility(machine, 8)

    def test_fallback_and_full_run_agree_for_entangled_states(self):
        """A CZ program collapses to non-basis states: the engine must
        detect it mid-recording and continue to the correct full result."""
        config = MachineConfig(qubits=(1, 2), flux_pairs=((1, 2),),
                               trace_enabled=False, calibration_shots=20,
                               dcu_points=1)
        asm = """
            mov r15, 40000
            mov r1, 0
            mov r2, 6
        Outer_Loop:
            QNopReg r15
            Pulse {q1}, Y90
            Pulse {q2}, Y90
            Wait 4
            Pulse {q1, q2}, CZ
            Wait 8
            MPG {q1}, 300
            MD {q1}
            addi r1, r1, 1
            bne r1, r2, Outer_Loop
            halt
        """
        baseline = QuMA(config)
        baseline.load(asm)
        r_base = baseline.run()

        machine = QuMA(config)
        machine.load(asm)
        r_replay, plan, report = run_with_replay(machine, 6)
        assert plan is None
        assert report.fallback_reason is not None
        assert np.array_equal(r_base.averages, r_replay.averages)


def register_config(**overrides):
    from repro.readout.multiplex import staggered_readouts

    defaults = dict(qubits=(1, 2), flux_pairs=((1, 2),),
                    trace_enabled=False, calibration_shots=20,
                    dcu_points=2, readouts=staggered_readouts(2))
    defaults.update(overrides)
    return MachineConfig(**defaults)


def register_asm(n_rounds):
    """A CZ-entangled two-qubit register measured through one record."""
    return f"""
        mov r15, 40000
        mov r1, 0
        mov r2, {n_rounds}
    Outer_Loop:
        QNopReg r15
        Pulse {{q1}}, Y90
        Wait 4
        Pulse {{q1, q2}}, CZ
        Wait 8
        MPG {{q1, q2}}, 300
        MD {{q1, q2}}
        addi r1, r1, 1
        bne r1, r2, Outer_Loop
        halt
    """


class TestJointReplay:
    """Joint-outcome Markov replay for multiplexed register readout."""

    def test_cold_joint_replay_bitwise_identical(self):
        config = register_config()
        m_off = QuMA(config)
        m_off.load(register_asm(12))
        r_off = m_off.run()
        m_on = QuMA(config)
        m_on.load(register_asm(12))
        r_on, plan, report = run_with_replay(m_on, 12)
        assert report.fallback_reason is None
        assert report.replayed_rounds == 10
        assert isinstance(plan, JointReplayPlan)
        # The DCU stream — every per-qubit statistic of every round — is
        # bit-identical, not just the per-point means.
        assert m_off.dcu.raw().tolist() == m_on.dcu.raw().tolist()
        assert np.array_equal(r_off.averages, r_on.averages)
        assert r_on.measurements == r_off.measurements == 24
        assert r_on.duration_ns == r_off.duration_ns
        assert r_on.instructions_executed == r_off.instructions_executed

    def test_warm_joint_replay_and_cross_seed_reuse(self):
        asm = register_asm(12)
        m_cold = QuMA(register_config())
        m_cold.load(asm)
        _, plan, _ = run_with_replay(m_cold, 12)
        for seed in (None, 1234):
            config = (register_config() if seed is None
                      else register_config(seed=seed))
            m_off = QuMA(config)
            m_off.load(asm)
            m_off.run()
            m_warm = QuMA(config)
            m_warm.load(asm)
            r_warm, _, report = run_with_replay(m_warm, 12, plan=plan)
            assert report.plan_hit and report.replayed_rounds == 12
            assert m_off.dcu.raw().tolist() == m_warm.dcu.raw().tolist()

    def test_cold_build_on_nondefault_seed(self):
        asm = register_asm(8)
        config = register_config(seed=77)
        m_off = QuMA(config)
        m_off.load(asm)
        m_off.run()
        m_on = QuMA(config)
        m_on.load(asm)
        _, plan, report = run_with_replay(m_on, 8)
        assert report.fallback_reason is None
        assert isinstance(plan, JointReplayPlan)
        assert m_off.dcu.raw().tolist() == m_on.dcu.raw().tolist()


class TestChainOutcomes:
    def test_memoryless_positions(self):
        t0 = np.array([True, False, True, False])
        t1 = t0.copy()
        assert np.array_equal(_chain_outcomes(t0, t1, prev=1), t0)

    def test_dependent_positions_follow_previous_outcome(self):
        # position 0 depends on prev; position 2 depends on position 1.
        t0 = np.array([False, True, False, False])
        t1 = np.array([True, True, True, False])
        out = _chain_outcomes(t0, t1, prev=1)
        assert out.tolist() == [True, True, True, False]
        out = _chain_outcomes(t0, t1, prev=0)
        assert out.tolist() == [False, True, True, False]

    def test_matches_sequential_reference(self):
        rng = np.random.default_rng(5)
        p = rng.random((7, 2))
        u = rng.random(7 * 30)
        t0 = u < np.tile(p[:, 0], 30)
        t1 = u < np.tile(p[:, 1], 30)
        fast = _chain_outcomes(t0, t1, prev=0)
        prev = 0
        ref = []
        for j in range(len(u)):
            prev = int(u[j] < p[j % 7, 1 if prev else 0])
            ref.append(bool(prev))
        assert fast.tolist() == ref


class TestRunReplayed:
    def test_quma_hook(self):
        config = fast_config(dcu_points=1)
        machine = QuMA(config)
        machine.load(loop_asm(20))
        result = machine.run_replayed(20)
        assert result.completed
        assert result.replayed_rounds == 18

        full = QuMA(config)
        full.load(loop_asm(20))
        assert np.array_equal(full.run().averages, result.averages)

    def test_plan_contents(self):
        _, _, plan, _ = run_pair(loop_asm(16), 16)
        assert isinstance(plan, ReplayPlan)
        assert plan.k_points == 1
        assert plan.duration_ns == 1500
        assert plan.p1.shape == (1, 2)
        assert 0.0 <= plan.p1.min() and plan.p1.max() <= 1.0
        assert plan.round_period_ns > 0
