"""Tests for frequency-multiplexed readout (Section 5.1.2)."""

import numpy as np
import pytest

from repro.core import MachineConfig, QuMA
from repro.readout import ReadoutParams, calibrate_readout
from repro.readout.multiplex import crosstalk_matrix, multiplexed_trace
from repro.readout.resonator import mean_trace
from repro.utils import derive_rng
from repro.utils.errors import ConfigurationError

DURATION = 1500
RO_A = ReadoutParams(f_if_hz=40e6)
RO_B = ReadoutParams(f_if_hz=52e6, phase_ground=0.9, phase_excited=-0.2)


def test_multiplexed_trace_is_sum_of_signals():
    rng = derive_rng(0, "x")
    quiet_a = ReadoutParams(f_if_hz=40e6, noise_std=0.0)
    quiet_b = ReadoutParams(f_if_hz=52e6, noise_std=0.0)
    combined = multiplexed_trace({0: quiet_a, 1: quiet_b}, {0: 0, 1: 1},
                                 DURATION, rng)
    expected = (mean_trace(quiet_a, 0, DURATION, 0)
                + mean_trace(quiet_b, 1, DURATION, 0))
    assert np.allclose(combined, expected)


def test_multiplexed_trace_validation():
    rng = derive_rng(0, "x")
    with pytest.raises(ConfigurationError):
        multiplexed_trace({}, {}, DURATION, rng)
    with pytest.raises(ConfigurationError):
        multiplexed_trace({0: RO_A}, {1: 0}, DURATION, rng)


def test_crosstalk_small_at_wide_if_separation():
    cal_a = calibrate_readout(RO_A, DURATION, n_shots=20, seed=1)
    cal_b = calibrate_readout(RO_B, DURATION, n_shots=20, seed=1)
    m = crosstalk_matrix({0: RO_A, 1: RO_B},
                         {0: cal_a.weights, 1: cal_b.weights}, DURATION)
    assert m[0, 0] == pytest.approx(1.0)
    assert m[1, 1] == pytest.approx(1.0)
    # 12 MHz apart over 1.5 us: filters nearly orthogonal.
    assert abs(m[0, 1]) < 0.1
    assert abs(m[1, 0]) < 0.1


def test_crosstalk_grows_as_ifs_approach():
    def off_diagonal(f_b):
        ro_b = ReadoutParams(f_if_hz=f_b)
        cal_a = calibrate_readout(RO_A, DURATION, n_shots=10, seed=1)
        cal_b = calibrate_readout(ro_b, DURATION, n_shots=10, seed=1)
        m = crosstalk_matrix({0: RO_A, 1: ro_b},
                             {0: cal_a.weights, 1: cal_b.weights}, DURATION)
        return abs(m[0, 1])

    far = off_diagonal(60e6)
    near = off_diagonal(41e6)
    assert near > far


def test_machine_simultaneous_two_qubit_measurement():
    """One MPG addressing both qubits: one multiplexed record, two MDUs,
    both results correct."""
    config = MachineConfig(qubits=(0, 1), readouts=(RO_A, RO_B))
    machine = QuMA(config)
    machine.load("""
        Wait 4
        Pulse {q1}, X180
        Wait 4
        MPG {q0, q1}, 300
        MD {q0, q1}, r5
        halt
    """)
    result = machine.run()
    assert result.completed
    # Both MDUs discriminated the same feedline record; q1 was excited.
    outcomes = {r.qubit: r.value for r in machine.measurement.results}
    assert outcomes == {0: 0, 1: 1}


def test_machine_multiplexed_statistics():
    """Simultaneous measurement discriminates both qubits reliably."""
    correct = 0
    shots = 20
    for seed in range(shots):
        config = MachineConfig(qubits=(0, 1), readouts=(RO_A, RO_B),
                               seed=seed, trace_enabled=False)
        machine = QuMA(config)
        machine.load("""
            Wait 4
            Pulse {q0}, X180
            Wait 4
            MPG {q0, q1}, 300
            MD {q0, q1}
            halt
        """)
        machine.run()
        outcomes = {r.qubit: r.value for r in machine.measurement.results}
        correct += outcomes == {0: 1, 1: 0}
    assert correct >= shots - 1


def test_readouts_must_parallel_qubits():
    with pytest.raises(ConfigurationError):
        MachineConfig(qubits=(0, 1), readouts=(RO_A,))
