"""Tests for instruction dataclass validation."""

import pytest

from repro.isa import (
    Addi,
    Apply,
    Bne,
    Load,
    Md,
    Measure,
    Movi,
    Mpg,
    Pulse,
    QCall,
    Wait,
    WaitReg,
)
from repro.isa.instructions import mask_qubits, qubit_mask


def test_movi_range():
    Movi(rd=15, imm=40000)
    Movi(rd=1, imm=-1)
    with pytest.raises(ValueError):
        Movi(rd=1, imm=1 << 20)
    with pytest.raises(ValueError):
        Movi(rd=32, imm=0)


def test_addi_range():
    Addi(rd=1, rs=1, imm=1)
    with pytest.raises(ValueError):
        Addi(rd=1, rs=1, imm=1 << 15)


def test_load_offset_range():
    Load(rd=9, rs=3, offset=0)
    with pytest.raises(ValueError):
        Load(rd=9, rs=3, offset=1 << 15)


def test_wait_interval_bounds():
    Wait(interval=4)
    Wait(interval=40000)
    with pytest.raises(ValueError):
        Wait(interval=0)
    with pytest.raises(ValueError):
        Wait(interval=1 << 20)


def test_waitreg_register():
    WaitReg(rs=15)
    with pytest.raises(ValueError):
        WaitReg(rs=40)


def test_pulse_normalizes_qubits():
    p = Pulse.single((2, 0), "X180")
    assert p.pairs[0][0] == (0, 2)


def test_pulse_rejects_empty_and_dupes():
    with pytest.raises(ValueError):
        Pulse(pairs=())
    with pytest.raises(ValueError):
        Pulse.single((), "I")
    with pytest.raises(ValueError):
        Pulse.single((1, 1), "I")


def test_pulse_qubit_range():
    with pytest.raises(ValueError):
        Pulse.single((10,), "I")


def test_mpg_duration():
    Mpg(qubits=(2,), duration=300)
    with pytest.raises(ValueError):
        Mpg(qubits=(2,), duration=0)
    with pytest.raises(ValueError):
        Mpg(qubits=(2,), duration=1 << 16)


def test_md_optional_register():
    assert Md(qubits=(2,)).rd is None
    assert Md(qubits=(2,), rd=7).rd == 7
    with pytest.raises(ValueError):
        Md(qubits=(2,), rd=33)


def test_measure_optional_register():
    assert Measure(qubit=0).rd is None
    assert Measure(qubit=0, rd=7).rd == 7


def test_apply_quantum_flag():
    assert Apply(op="X180", qubit=0).is_quantum
    assert not Movi(rd=0, imm=0).is_quantum
    assert Wait(interval=1).is_quantum
    assert WaitReg(rs=0).is_quantum


def test_qcall_arity():
    QCall(uprog="CNOT", qubits=(0, 1))
    QCall(uprog="reset", qubits=(3,))
    with pytest.raises(ValueError):
        QCall(uprog="x", qubits=())
    with pytest.raises(ValueError):
        QCall(uprog="x", qubits=(0, 1, 2))


def test_branch_registers_checked():
    with pytest.raises(ValueError):
        Bne(rs=99, rt=0, target="loop")


def test_qubit_mask_roundtrip():
    for qubits in [(0,), (2,), (0, 1, 9), tuple(range(10))]:
        assert mask_qubits(qubit_mask(qubits)) == qubits
