"""Tests for the execution controller (classical pipeline semantics)."""

import pytest

from repro.core import MachineConfig, QuMA


def run_program(source, **config_kwargs):
    machine = QuMA(MachineConfig(qubits=(2,), trace_enabled=True, **config_kwargs))
    machine.load(source)
    result = machine.run(max_events=2_000_000)
    return machine, result


def test_mov_add_sub():
    machine, result = run_program("""
        mov r1, 10
        mov r2, 32
        add r3, r1, r2
        sub r4, r2, r1
        halt
    """)
    assert result.registers[3] == 42
    assert result.registers[4] == 22
    assert result.completed


def test_logic_ops():
    machine, _ = run_program("""
        mov r1, 12
        mov r2, 10
        and r3, r1, r2
        or r4, r1, r2
        xor r5, r1, r2
        halt
    """)
    assert machine.registers.read(3) == 8
    assert machine.registers.read(4) == 14
    assert machine.registers.read(5) == 6


def test_addi_negative():
    machine, _ = run_program("mov r1, 5\naddi r1, r1, -3\nhalt")
    assert machine.registers.read(1) == 2


def test_load_store_roundtrip():
    machine, _ = run_program("""
        mov r3, 100
        mov r9, 77
        store r9, r3[4]
        load r8, r3[4]
        load r7, r3[5]
        halt
    """)
    assert machine.registers.read(8) == 77
    assert machine.registers.read(7) == 0
    assert machine.exec_ctrl.data_memory[104] == 77


def test_loop_with_bne():
    machine, result = run_program("""
        mov r1, 0
        mov r2, 5
        mov r3, 0
    loop:
        addi r3, r3, 10
        addi r1, r1, 1
        bne r1, r2, loop
        halt
    """)
    assert machine.registers.read(3) == 50


def test_beq_and_blt():
    machine, _ = run_program("""
        mov r1, 3
        mov r2, 3
        mov r4, 0
        beq r1, r2, equal
        mov r4, 99
    equal:
        mov r5, 1
        blt r1, r2, never
        mov r6, 2
    never:
        halt
    """)
    assert machine.registers.read(4) == 0
    assert machine.registers.read(5) == 1
    assert machine.registers.read(6) == 2


def test_jmp():
    machine, _ = run_program("""
        mov r1, 1
        jmp skip
        mov r1, 99
    skip:
        halt
    """)
    assert machine.registers.read(1) == 1


def test_end_of_program_halts():
    machine, result = run_program("mov r1, 7")
    assert result.completed
    assert machine.registers.read(1) == 7


def test_instruction_count():
    _, result = run_program("nop\nnop\nnop\nhalt")
    assert result.instructions_executed == 4


def test_classical_issue_time_accumulates():
    _, result = run_program("nop\nnop\nnop\nnop\nhalt",
                            classical_issue_ns=5, classical_jitter_ns=0)
    # 5 instructions, one per 5 ns after the initial dispatch.
    assert result.duration_ns >= 20


def test_jitter_is_deterministic_per_seed():
    _, r1 = run_program("nop\nnop\nnop\nhalt", classical_jitter_ns=10, seed=3)
    _, r2 = run_program("nop\nnop\nnop\nhalt", classical_jitter_ns=10, seed=3)
    assert r1.duration_ns == r2.duration_ns


def test_run_without_program_raises():
    machine = QuMA(MachineConfig(qubits=(2,)))
    with pytest.raises(Exception):
        machine.run()


def test_register_wrap32_through_program():
    machine, _ = run_program("""
        mov r1, 1048575
        mov r2, 1048575
        add r3, r1, r2
        halt
    """)
    assert machine.registers.read(3) == 2097150
