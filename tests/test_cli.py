"""Tests for the command-line interface."""

import pytest

from repro.cli import main

PROGRAM = """
    mov r1, 42
    Wait 4
    Pulse {q2}, X180
    Wait 4
    MPG {q2}, 300
    MD {q2}, r7
    halt
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.qasm"
    path.write_text(PROGRAM)
    return path


def test_assemble_writes_binary(source_file, tmp_path, capsys):
    out = tmp_path / "prog.bin"
    rc = main(["assemble", str(source_file), "-o", str(out)])
    assert rc == 0
    blob = out.read_bytes()
    assert len(blob) == 4 * 7
    assert "7 instructions" in capsys.readouterr().out


def test_assemble_default_output_name(source_file, tmp_path):
    rc = main(["assemble", str(source_file)])
    assert rc == 0
    assert (tmp_path / "prog.bin").exists()


def test_disassemble_roundtrip(source_file, tmp_path, capsys):
    out = tmp_path / "prog.bin"
    main(["assemble", str(source_file), "-o", str(out)])
    capsys.readouterr()
    rc = main(["disassemble", str(out)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "mov r1, 42" in text
    assert "Pulse {q2}, X180" in text
    assert "MD {q2}, r7" in text


def test_run_from_source(source_file, capsys):
    rc = main(["run", str(source_file), "--qubits", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "completed:            True" in out
    assert "'r7': 1" in out
    assert "'r1': 42" in out


def test_run_from_binary(source_file, tmp_path, capsys):
    out = tmp_path / "prog.bin"
    main(["assemble", str(source_file), "-o", str(out)])
    capsys.readouterr()
    rc = main(["run", str(out)])
    assert rc == 0
    assert "'r7': 1" in capsys.readouterr().out


def test_run_with_trace(source_file, capsys):
    rc = main(["run", str(source_file), "--trace"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "pulse_start" in out


def test_missing_file_error(capsys):
    rc = main(["run", "/nonexistent/prog.qasm"])
    assert rc == 2
    assert "error:" in capsys.readouterr().err


def test_bad_assembly_error(tmp_path, capsys):
    path = tmp_path / "bad.qasm"
    path.write_text("frobnicate r1")
    rc = main(["assemble", str(path)])
    assert rc == 2
    assert "error:" in capsys.readouterr().err


def test_allxy_command(capsys):
    rc = main(["allxy", "--rounds", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "deviation:" in out


def test_exp_list(capsys):
    rc = main(["exp", "--list"])
    assert rc == 0
    out = capsys.readouterr().out
    for name in ("rabi", "rb", "allxy", "t1", "ramsey", "echo",
                 "cz_calibration", "bell", "ghz"):
        assert name in out
    assert "params:" in out
    # --list shows each experiment's target arity.
    assert "target: 1 qubit" in out
    assert "target: 2 qubits (pair)" in out
    assert "target: register (2+ qubits)" in out


def test_exp_without_name_lists(capsys):
    rc = main(["exp"])
    assert rc == 0
    assert "rabi" in capsys.readouterr().out


def test_exp_runs_registered_experiment(capsys):
    rc = main(["exp", "rabi", "--param", "n_rounds=4",
               "--param", "amplitudes=[0.0, 0.25, 0.5, 0.75, 0.999]"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "pi amplitude" in out
    assert "5 jobs | backend=serial" in out


def test_exp_stream_prints_jobs_and_fits(capsys):
    rc = main(["exp", "rabi", "--stream", "--param", "n_rounds=4",
               "--param", "amplitudes=[0.0, 0.25, 0.5, 0.75, 0.999]"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "done [quma]" in out
    assert "fit 5/5" in out


def test_exp_multi_qubit(capsys):
    rc = main(["exp", "allxy", "--qubits", "0,1", "--param", "n_rounds=2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "q0:" in out and "q1:" in out


def test_parse_targets_register_syntax():
    from repro.cli import _parse_targets

    assert _parse_targets("0,1") == ((0,), (1,))
    assert _parse_targets("0-1,1-2") == ((0, 1), (1, 2))
    assert _parse_targets("0-1-2") == ((0, 1, 2),)
    assert _parse_targets("2, 0-1") == ((2,), (0, 1))


def test_parse_params_json_bool_spellings():
    from repro.cli import _parse_params

    # `replay=false` must not become the (truthy) string "false".
    assert _parse_params(["replay=false"]) == {"replay": False}
    assert _parse_params(["replay=True", "stream=true"]) == \
        {"replay": True, "stream": True}
    assert _parse_params(["bases=('ZZ',)", "label=falsey"]) == \
        {"bases": ("ZZ",), "label": "falsey"}


def test_exp_stream_reports_replay_fallback(capsys):
    rc = main(["exp", "ghz", "--qubits", "0-1", "--stream",
               "--param", "n_rounds=4", "--param", "repeats=1",
               "--param", "replay=false"])
    assert rc == 0
    assert "[no replay: replay disabled by spec]" in capsys.readouterr().out


def test_exp_bell_pair(capsys):
    rc = main(["exp", "bell", "--qubits", "0-1", "--param", "n_rounds=6"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fidelity >=" in out
    assert "3 jobs | backend=serial" in out


def test_exp_pair_sweep(capsys):
    rc = main(["exp", "bell", "--qubits", "0-1,1-2", "--stream",
               "--param", "n_rounds=4", "--param", "bases=('ZZ',)"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "q0-1:" in out and "q1-2:" in out
    assert "fit 2/2" in out


def test_exp_ghz_chain(capsys):
    rc = main(["exp", "ghz", "--qubits", "0-1-2",
               "--param", "n_rounds=4", "--param", "repeats=1"])
    assert rc == 0
    assert "population" in capsys.readouterr().out


def test_exp_unknown_name_errors(capsys):
    rc = main(["exp", "nope"])
    assert rc == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_exp_bad_param_errors(capsys):
    rc = main(["exp", "rabi", "--param", "norounds"])
    assert rc == 2
    assert "key=value" in capsys.readouterr().err


def test_exp_save_artifact(tmp_path, capsys):
    out_path = tmp_path / "sweep.json"
    rc = main(["exp", "t1", "--param", "n_rounds=2",
               "--param", "delays_cycles=[4, 8, 16, 24]",
               "--save", str(out_path)])
    assert rc == 0
    assert out_path.exists()
    assert "sweep artifact" in capsys.readouterr().out


def test_batch_rabi_sweep(capsys):
    rc = main(["batch", "--experiment", "rabi", "--points", "3",
               "--rounds", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "amplitude   P(|1>)" in out
    assert "3 jobs | backend=serial" in out
    assert "compile cache hit rate:" in out
    assert "machine reuse rate:" in out


def test_batch_allxy_repeats(capsys):
    rc = main(["batch", "--experiment", "allxy", "--repeat", "2",
               "--rounds", "4"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "allxy#0" in out and "allxy#1" in out
    assert "deviation=" in out


def test_batch_raw_program(source_file, capsys):
    rc = main(["batch", "--program", str(source_file), "--repeat", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "job0" in out and "job1" in out
    assert "2 jobs | backend=serial" in out
