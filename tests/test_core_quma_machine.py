"""Machine-level integration tests: programs through the whole stack."""

import pytest

from repro.core import MachineConfig, QuMA


def make_machine(**kwargs):
    kwargs.setdefault("qubits", (2,))
    return QuMA(MachineConfig(**kwargs))


def test_x180_then_measure_reads_one():
    machine = make_machine()
    machine.load("""
        Wait 4
        Pulse {q2}, X180
        Wait 4
        MPG {q2}, 300
        MD {q2}, r7
        halt
    """)
    result = machine.run()
    assert result.completed
    assert result.timing_violations == []
    assert machine.registers.read(7) == 1
    assert result.measurements == 1


def test_identity_then_measure_reads_zero():
    machine = make_machine()
    machine.load("""
        Wait 4
        Pulse {q2}, I
        Wait 4
        MPG {q2}, 300
        MD {q2}, r7
        halt
    """)
    machine.run()
    assert machine.registers.read(7) == 0


def test_x90_twice_measures_one():
    machine = make_machine()
    machine.load("""
        Wait 4
        Pulse {q2}, X90
        Wait 4
        Pulse {q2}, X90
        Wait 4
        MPG {q2}, 300
        MD {q2}, r7
        halt
    """)
    machine.run()
    assert machine.registers.read(7) == 1


def test_feedback_stall_resolves():
    """An instruction reading the MD destination stalls until write-back."""
    machine = make_machine()
    machine.load("""
        mov r9, 0
        Wait 4
        Pulse {q2}, X180
        Wait 4
        MPG {q2}, 300
        MD {q2}, r7
        add r9, r9, r7
        halt
    """)
    result = machine.run()
    assert result.completed
    assert machine.registers.read(9) == 1
    # The add stalled for roughly the measurement + discrimination time.
    assert result.stall_ns > 1000


def test_feedback_branch_on_result():
    """Active-reset pattern: conditionally apply X based on measurement."""
    machine = make_machine()
    machine.load("""
        mov r0, 1
        Wait 4
        Pulse {q2}, X180
        Wait 4
        MPG {q2}, 300
        MD {q2}, r7
        bne r7, r0, skip_flip
        Wait 400
        Pulse {q2}, X180
        Wait 4
    skip_flip:
        MPG {q2}, 300
        MD {q2}, r8
        halt
    """)
    result = machine.run()
    assert result.completed
    # Measured 1, flipped back to 0 (reset achieved).
    assert machine.registers.read(7) == 1
    assert machine.registers.read(8) == 0


def test_gate_pulses_back_to_back_in_device_trace():
    """Codeword triggers 4 cycles apart produce pulses exactly 20 ns apart."""
    machine = make_machine()
    machine.load("""
        Wait 4
        Pulse {q2}, X90
        Wait 4
        Pulse {q2}, X90
        halt
    """)
    machine.run()
    starts = [r.time for r in machine.trace.filter(kind="pulse_start")]
    assert len(starts) == 2
    assert starts[1] - starts[0] == 20


def test_msmt_pulse_starts_when_second_gate_ends():
    """Figure 3/5: gates and measurement are back to back."""
    machine = make_machine()
    machine.load("""
        Wait 4
        Pulse {q2}, X90
        Wait 4
        Pulse {q2}, X90
        Wait 4
        MPG {q2}, 300
        MD {q2}
        halt
    """)
    machine.run()
    pulse_starts = [r.time for r in machine.trace.filter(kind="pulse_start")]
    msmt_starts = [r.time for r in machine.trace.filter(kind="msmt_pulse_start")]
    assert msmt_starts[0] == pulse_starts[1] + 20


def test_md_without_mpg_is_orphan():
    machine = make_machine()
    machine.load("""
        Wait 4
        MD {q2}, r7
        halt
    """)
    result = machine.run()
    assert result.orphan_discriminations == 1


def test_dcu_collects_statistics():
    machine = make_machine(dcu_points=2)
    machine.load("""
        Wait 4
        Pulse {q2}, X180
        Wait 4
        MPG {q2}, 300
        MD {q2}
        Wait 40000
        Pulse {q2}, I
        Wait 4
        MPG {q2}, 300
        MD {q2}
        halt
    """)
    result = machine.run()
    assert result.averages is not None
    assert len(result.averages) == 2
    # Excited-state statistic above ground-state statistic.
    assert result.averages[0] > result.averages[1]


def test_apply_and_measure_qis_level():
    """QIS-level program: microcode expands Apply/Measure."""
    machine = make_machine()
    machine.load("""
        QNopReg r15
        Apply X180, q2
        Measure q2, r7
        halt
    """)
    machine.registers.write(15, 400)
    machine.run()
    assert machine.registers.read(7) == 1


def test_qnopreg_runtime_value():
    """The same QNopReg issues different waits as r15 changes."""
    machine = make_machine()
    machine.load("""
        mov r15, 40
        QNopReg r15
        Pulse {q2}, X90
        mov r15, 80
        QNopReg r15
        Pulse {q2}, X90
        halt
    """)
    machine.run()
    starts = [r.time for r in machine.trace.filter(kind="pulse_start")]
    # Intervals: 40 cycles then 80 cycles -> 200 ns then 400 ns apart.
    assert starts[1] - starts[0] == 400


def test_cnot_microprogram_end_to_end():
    machine = QuMA(MachineConfig(qubits=(0, 1), flux_pairs=((0, 1),)))
    machine.define_microprogram("CNOT", 2, """
        Pulse {q0}, mY90
        Wait 4
        Pulse {q0, q1}, CZ
        Wait 8
        Pulse {q0}, Y90
        Wait 4
    """)
    # Control in |1>: CNOT flips the target.
    machine.load("""
        Wait 4
        Pulse {q1}, X180
        Wait 4
        CNOT q0, q1
        MPG {q0}, 300
        MD {q0}, r6
        halt
    """)
    result = machine.run()
    assert result.completed
    assert machine.registers.read(6) == 1


def test_cnot_control_zero_leaves_target():
    machine = QuMA(MachineConfig(qubits=(0, 1), flux_pairs=((0, 1),)))
    machine.define_microprogram("CNOT", 2, """
        Pulse {q0}, mY90
        Wait 4
        Pulse {q0, q1}, CZ
        Wait 8
        Pulse {q0}, Y90
        Wait 4
    """)
    machine.load("""
        Wait 4
        CNOT q0, q1
        MPG {q0}, 300
        MD {q0}, r6
        halt
    """)
    machine.run()
    assert machine.registers.read(6) == 0


def test_deterministic_given_seed():
    def run_once():
        machine = make_machine(seed=11)
        machine.load("""
            Wait 4
            Pulse {q2}, X90
            Wait 4
            MPG {q2}, 300
            MD {q2}, r7
            halt
        """)
        machine.run()
        return machine.registers.read(7), machine.sim.now

    assert run_once() == run_once()


def test_timing_deterministic_under_classical_jitter():
    """Section 5.2's central claim: output timing is decoupled from
    instruction-execution timing."""
    def pulse_times(jitter):
        machine = make_machine(classical_jitter_ns=jitter, seed=7)
        machine.load("""
            Wait 400
            Pulse {q2}, X90
            Wait 4
            Pulse {q2}, X90
            Wait 4
            MPG {q2}, 300
            MD {q2}
            halt
        """)
        machine.run()
        return [r.time for r in machine.trace.filter(kind="pulse_start")]

    assert pulse_times(0) == pulse_times(37)


def test_queue_backpressure_does_not_deadlock():
    machine = make_machine(queue_capacity=4)
    body = "\n".join(
        "Wait 40\nPulse {q2}, X180\nWait 4\nPulse {q2}, X180"
        for _ in range(20))
    machine.load(body + "\nhalt")
    result = machine.run()
    assert result.completed
    assert len(machine.trace.filter(kind="pulse_start")) == 40
