"""Tests for ideal gates and SU(2) helpers."""

import numpy as np
import pytest

from repro.qubit import (
    CNOT,
    CZ,
    HADAMARD,
    I2,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    allclose_up_to_phase,
    rx,
    ry,
    rz,
    su2_rotation,
)


def test_paulis_unitary_and_hermitian():
    for p in (PAULI_X, PAULI_Y, PAULI_Z):
        assert np.allclose(p @ p, I2)
        assert np.allclose(p, p.conj().T)


def test_rx_pi_is_x_up_to_phase():
    assert allclose_up_to_phase(rx(np.pi), PAULI_X)


def test_ry_pi_is_y_up_to_phase():
    assert allclose_up_to_phase(ry(np.pi), PAULI_Y)


def test_rz_pi_is_z_up_to_phase():
    assert allclose_up_to_phase(rz(np.pi), PAULI_Z)


def test_rx_composition():
    assert np.allclose(rx(0.3) @ rx(0.4), rx(0.7))


def test_x90_squared_is_x180():
    assert np.allclose(rx(np.pi / 2) @ rx(np.pi / 2), rx(np.pi))


def test_z_equals_x_times_y_up_to_phase():
    # Section 5.3.2: Z = X . Y up to an irrelevant global phase.
    assert allclose_up_to_phase(PAULI_X @ PAULI_Y, PAULI_Z)


def test_su2_rotation_unitary():
    rng = np.random.default_rng(1)
    for _ in range(20):
        n = rng.normal(size=3)
        theta = rng.uniform(-2 * np.pi, 2 * np.pi)
        u = su2_rotation(*n, theta)
        assert np.allclose(u @ u.conj().T, I2, atol=1e-12)


def test_su2_zero_axis_is_identity():
    assert np.allclose(su2_rotation(0, 0, 0, 1.0), I2)


def test_cnot_from_cz_and_ry():
    # Section 5.3.2: CNOT_{c,t} = Ry(pi/2)_t . CZ . Ry(-pi/2)_t.
    ryt = np.kron(I2, ry(np.pi / 2))  # first qubit = control (MSB)
    rymt = np.kron(I2, ry(-np.pi / 2))
    composed = ryt @ CZ @ rymt
    assert allclose_up_to_phase(composed, CNOT)


def test_hadamard_squares_to_identity():
    assert np.allclose(HADAMARD @ HADAMARD, I2)


def test_allclose_up_to_phase_rejects_different():
    assert not allclose_up_to_phase(PAULI_X, PAULI_Z)
    assert allclose_up_to_phase(1j * PAULI_X, PAULI_X)


def test_allclose_up_to_phase_shape_mismatch():
    assert not allclose_up_to_phase(PAULI_X, CZ)


@pytest.mark.parametrize("theta", [0.0, 0.1, np.pi / 2, np.pi, 2 * np.pi])
def test_rotation_angle_on_bloch_sphere(theta):
    # |0> rotated by rx(theta) has z = cos(theta).
    psi = rx(theta) @ np.array([1, 0], dtype=complex)
    z = abs(psi[0]) ** 2 - abs(psi[1]) ** 2
    assert z == pytest.approx(np.cos(theta), abs=1e-12)
