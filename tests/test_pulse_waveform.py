"""Tests for the Waveform container and memory accounting."""

import numpy as np
import pytest

from repro.pulse import Waveform, gaussian, zeros


def test_duration():
    w = Waveform("x", gaussian(20, 5.0))
    assert w.duration_ns == 20
    assert len(w) == 20


def test_memory_accounting_matches_paper_per_pulse():
    # One 20 ns pulse: 2 channels x 20 samples x 12 bits = 480 bits = 60 B.
    w = Waveform("x", gaussian(20, 5.0))
    assert w.memory_bits == 2 * 20 * 12
    assert w.memory_bytes == 60.0


def test_seven_pulses_are_420_bytes():
    # Section 5.1.1: the AllXY LUT of 7 pulses consumes 420 bytes.
    total = sum(Waveform(str(i), zeros(20)).memory_bytes for i in range(7))
    assert total == 420.0


def test_samples_read_only():
    w = Waveform("x", gaussian(20, 5.0))
    with pytest.raises((ValueError, RuntimeError)):
        w.samples[0] = 1.0


def test_is_zero():
    assert Waveform("i", zeros(20)).is_zero()
    assert not Waveform("x", gaussian(20, 5.0, 0.5)).is_zero()


def test_concatenate():
    a = Waveform("a", zeros(10))
    b = Waveform("b", gaussian(20, 5.0))
    c = a.concatenate(b)
    assert c.duration_ns == 30
    assert c.name == "a+b"
    assert np.allclose(c.samples[10:], b.samples)
