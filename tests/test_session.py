"""The Session facade, the experiment registry, and incremental fits.

The tentpole contracts under test:

* the registry names every shipped experiment, unknown names fail
  loudly, and unknown parameters are rejected at construction;
* the deprecated ``run_*`` wrappers warn and return results bit-identical
  to ``Session.run`` on every backend (serial always; process/async in
  the slow tier);
* the final incremental ``update()`` estimate agrees exactly with the
  one-shot ``analyze()`` fit over the same sweep;
* multi-qubit runs return one result per qubit, each normalized against
  its own readout calibration.

Set ``REPRO_SERVICE_BACKEND=serial|process|async`` to pin the
parametrized backend (the CI matrix runs one backend per job).
"""

import os
import warnings

import numpy as np
import pytest

from repro import MachineConfig, Session
from repro.experiments import (
    REGISTRY,
    Estimate,
    run_allxy,
    run_echo,
    run_rabi,
    run_ramsey,
    run_rb,
    run_t1,
)
from repro.pulse import PulseCalibration
from repro.utils.errors import ConfigurationError

ALL_BACKENDS = ("serial", "process", "async")
_PINNED = os.environ.get("REPRO_SERVICE_BACKEND")
BACKENDS_UNDER_TEST = (_PINNED,) if _PINNED else ALL_BACKENDS

AMPS = np.linspace(0.0, 0.8, 5)


def fast_config(**kwargs):
    kwargs.setdefault("qubits", (2,))
    kwargs.setdefault("trace_enabled", False)
    kwargs.setdefault("calibration", PulseCalibration(kappa=0.7))
    return MachineConfig(**kwargs)


# -- registry ----------------------------------------------------------------


def test_registry_names_every_experiment():
    assert set(REGISTRY.names()) == {"rabi", "rb", "allxy",
                                     "t1", "ramsey", "echo",
                                     "cz_calibration", "bell", "ghz",
                                     "mitigated"}


def test_unknown_experiment_name_lists_registered():
    with Session(fast_config()) as session:
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            session.run("nope")


def test_unknown_parameter_rejected():
    with Session(fast_config()) as session:
        with pytest.raises(ConfigurationError, match="unknown parameter"):
            session.run("rabi", frequency=1.0)


def test_unwired_qubit_rejected():
    with Session(fast_config()) as session:
        with pytest.raises(ConfigurationError, match="not wired"):
            session.run("rabi", qubits=(5,), amplitudes=AMPS, n_rounds=2)


def test_registry_rejects_duplicate_name():
    from repro.experiments.base import ExperimentRegistry, Experiment

    registry = ExperimentRegistry()

    class A(Experiment):
        name = "x"

        def build_qubit_specs(self, qubit):
            return []

        def analyze_qubit(self, jobs, qubit):
            return None

    class B(A):
        pass

    registry.register(A)
    registry.register(A)  # idempotent
    with pytest.raises(ConfigurationError, match="already registered"):
        registry.register(B)


def test_session_lists_experiments():
    with Session(fast_config()) as session:
        assert session.experiments() == REGISTRY.names()


# -- wrapper parity ----------------------------------------------------------


def test_run_rabi_wrapper_warns_and_matches_session():
    with Session(fast_config()) as session:
        fresh = session.run("rabi", amplitudes=AMPS, n_rounds=4)
    with pytest.warns(DeprecationWarning, match="run_rabi is deprecated"):
        legacy = run_rabi(fast_config(), amplitudes=AMPS, n_rounds=4)
    assert np.array_equal(legacy.population, fresh.population)
    assert legacy.pi_amplitude == fresh.pi_amplitude
    assert legacy.expected_pi_amplitude == fresh.expected_pi_amplitude


def test_run_rb_wrapper_warns_and_matches_session():
    with Session(fast_config()) as session:
        fresh = session.run("rb", lengths=[1, 4, 8], sequences_per_length=2,
                            n_rounds=4, seed=3)
    with pytest.warns(DeprecationWarning, match="run_rb is deprecated"):
        legacy = run_rb(fast_config(), lengths=[1, 4, 8],
                        sequences_per_length=2, n_rounds=4, seed=3)
    assert np.array_equal(legacy.survival, fresh.survival)
    assert legacy.fit == fresh.fit


def test_run_allxy_wrapper_warns_and_matches_session():
    with Session(fast_config()) as session:
        fresh = session.run("allxy", n_rounds=4)
    with pytest.warns(DeprecationWarning, match="run_allxy is deprecated"):
        legacy = run_allxy(fast_config(), n_rounds=4)
    assert np.array_equal(legacy.averages, fresh.averages)
    assert np.array_equal(legacy.fidelity, fresh.fidelity)
    assert legacy.deviation == fresh.deviation


@pytest.mark.parametrize("kind,wrapper", [("t1", run_t1), ("ramsey", run_ramsey),
                                          ("echo", run_echo)])
def test_coherence_wrappers_warn_and_match_session(kind, wrapper):
    delays = [4, 8, 16, 24, 32, 48]
    with Session(fast_config()) as session:
        fresh = session.run(kind, delays_cycles=delays, n_rounds=8)
    with pytest.warns(DeprecationWarning, match=f"run_{kind} is deprecated"):
        legacy = wrapper(fast_config(), delays_cycles=delays, n_rounds=8)
    assert np.array_equal(legacy.population, fresh.population)
    assert legacy.fit == fresh.fit


def test_ramsey_session_does_not_mutate_config():
    config = fast_config()
    with Session(config) as session:
        session.run("ramsey", delays_cycles=[4, 8, 12, 16, 20, 24],
                    n_rounds=2)
    assert config.drive_detuning_hz == 0.0


@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
def test_wrapper_parity_across_backends(backend):
    """Session.run on every backend matches the serial wrapper bitwise."""
    with pytest.warns(DeprecationWarning):
        legacy = run_rabi(fast_config(), amplitudes=AMPS, n_rounds=4)
    with Session(fast_config(), backend=backend, workers=2) as session:
        fresh = session.run("rabi", amplitudes=AMPS, n_rounds=4)
    assert np.array_equal(legacy.population, fresh.population)
    assert legacy.pi_amplitude == fresh.pi_amplitude


# -- incremental fitting -----------------------------------------------------


def test_incremental_estimate_converges_to_analyze_fit():
    amps = np.linspace(0.0, 0.8, 9)
    with Session(fast_config()) as session:
        future = session.submit_experiment("rabi", amplitudes=amps,
                                           n_rounds=4)
        estimates = [est for _, est in future.stream(fit=True)]
        result = future.result()
    assert len(estimates) == 9
    final = estimates[-1]
    assert final.complete
    # The exactness contract: the last update() saw the same arrays the
    # one-shot analyze() fit saw, so the fits agree to the bit.
    assert final.values["pi_amplitude"] == result.pi_amplitude
    assert final.values["expected_pi_amplitude"] == \
        result.expected_pi_amplitude


def test_incremental_estimate_rb_converges():
    with Session(fast_config()) as session:
        future = session.submit_experiment("rb", lengths=[1, 4, 8, 16],
                                           sequences_per_length=2,
                                           n_rounds=4)
        for _, _ in future.stream():  # no per-point fitting requested
            pass
        result = future.result()
        final = future.estimate()
    assert final.complete
    assert final.values["error_per_clifford"] == result.error_per_clifford
    assert final.values["p"] == result.fit.p


def test_estimate_none_while_underconstrained():
    with Session(fast_config()) as session:
        future = session.submit_experiment("rabi", amplitudes=AMPS,
                                           n_rounds=2)
        seen = []
        for _, est in future.stream(fit=True):
            seen.append(est)
        future.result()
    # The 3-parameter fit needs 3 points; earlier estimates carry None.
    assert seen[0].values is None
    assert isinstance(seen[-1], Estimate)
    assert seen[-1].n_specs == len(AMPS)


def test_on_estimate_hook_enables_fitting():
    estimates = []
    with Session(fast_config()) as session:
        session.run("rabi", amplitudes=AMPS, n_rounds=2,
                    on_estimate=estimates.append)
    assert len(estimates) == len(AMPS)
    assert estimates[-1].complete


def test_coherence_estimate_matches_analysis():
    delays = [4, 8, 16, 24, 32, 48]
    with Session(fast_config()) as session:
        future = session.submit_experiment("t1", delays_cycles=delays,
                                           n_rounds=8)
        result = future.result()
        final = future.estimate()
    assert final.complete
    assert final.values["tau_ns"] == result.fitted_tau_ns


# -- multi-qubit -------------------------------------------------------------


def test_multi_qubit_rabi_returns_result_per_qubit():
    config = MachineConfig(qubits=(0, 1), trace_enabled=False,
                           calibration=PulseCalibration(kappa=0.7))
    with Session(config) as session:
        future = session.submit_experiment("rabi", qubits=(0, 1),
                                           amplitudes=AMPS, n_rounds=4)
        results = future.result()
    assert sorted(results) == [0, 1]
    for result in results.values():
        assert len(result.population) == len(AMPS)
    # Each qubit's jobs carry that qubit's own calibration points.
    jobs = future.sweep.jobs
    q0_cal = (jobs[0].s_ground, jobs[0].s_excited)
    q1_cal = (jobs[len(AMPS)].s_ground, jobs[len(AMPS)].s_excited)
    assert q0_cal != q1_cal


def test_multi_qubit_estimate_keyed_by_qubit():
    config = MachineConfig(qubits=(0, 1), trace_enabled=False,
                           calibration=PulseCalibration(kappa=0.7))
    with Session(config) as session:
        future = session.submit_experiment("rabi", qubits=(0, 1),
                                           amplitudes=AMPS, n_rounds=2)
        future.result()
        final = future.estimate()
    assert sorted(final.per_qubit) == [0, 1]
    assert all(v is not None for v in final.per_qubit.values())


def test_multi_qubit_single_machine_pooled():
    """Both qubits' sweeps share one pooled 2-qubit machine."""
    config = MachineConfig(qubits=(0, 1), trace_enabled=False,
                           calibration=PulseCalibration(kappa=0.7))
    with Session(config) as session:
        future = session.submit_experiment("rabi", qubits=(0, 1),
                                           amplitudes=AMPS, n_rounds=2)
        future.result()
    assert future.sweep.pool_stats["builds"] == 1
    assert future.sweep.pool_stats["reuses"] == 2 * len(AMPS) - 1


def test_int_qubits_accepted():
    with Session(fast_config()) as session:
        result = session.run("allxy", qubits=2, n_rounds=2)
    assert len(result.fidelity) == 42


# -- Estimate views (single-target contracts) --------------------------------


def test_estimate_values_raises_on_multi_target():
    """The values convenience view refuses to pick an arbitrary target."""
    config = MachineConfig(qubits=(0, 1), trace_enabled=False,
                           calibration=PulseCalibration(kappa=0.7))
    with Session(config) as session:
        future = session.submit_experiment("rabi", qubits=(0, 1),
                                           amplitudes=AMPS, n_rounds=2)
        future.result()
        final = future.estimate()
    assert sorted(final.per_target) == [(0,), (1,)]
    with pytest.raises(ConfigurationError, match="single-target"):
        final.values
    # Explicit per-target indexing is the supported multi-target path.
    assert final.per_target[(0,)] is not None


def test_estimate_per_qubit_raises_on_register_targets():
    """per_qubit is the legacy flat view; register estimates must not be
    silently collapsed onto single qubit labels."""
    from repro.experiments.base import Estimate

    estimate = Estimate(n_results=1, n_specs=1,
                        per_target={(0, 1): {"fidelity": 1.0}})
    with pytest.raises(ConfigurationError, match="per_target"):
        estimate.per_qubit
    with pytest.raises(ConfigurationError, match="single-target"):
        Estimate(n_results=2, n_specs=2,
                 per_target={(0,): {}, (1,): {}}).values


def test_estimate_values_single_target():
    from repro.experiments.base import Estimate

    assert Estimate(n_results=0, n_specs=1).values is None
    single = Estimate(n_results=1, n_specs=1, per_target={(2,): {"x": 1.0}})
    assert single.values == {"x": 1.0}
    assert single.per_qubit == {2: {"x": 1.0}}


# -- session plumbing --------------------------------------------------------


def test_session_builds_config_from_qubits_and_seed():
    session = Session(seed=7)
    config = session.config_for(qubits=(0, 1))
    assert config.qubits == (0, 1)
    assert config.seed == 7
    assert config.trace_enabled is False
    session.close()


def test_session_wraps_external_service_without_closing():
    from repro.service import ExperimentService

    service = ExperimentService(backend="serial")
    with Session(fast_config(), service=service) as session:
        session.run("allxy", n_rounds=2)
    # The wrapped service survives the session and stays usable.
    with Session(fast_config(), service=service) as session:
        session.run("allxy", n_rounds=2)
    assert service.stats()["submitted"] == 2
    service.close()


def test_two_sessions_share_service_without_stealing_results():
    """Scoped draining: interleaved experiments keep their own streams."""
    from repro.service import ExperimentService

    with ExperimentService(backend="serial") as service:
        a = Session(fast_config(), service=service)
        b = Session(fast_config(seed=9), service=service)
        fut_a = a.submit_experiment("rabi", amplitudes=AMPS, n_rounds=2)
        fut_b = b.submit_experiment("rabi", amplitudes=AMPS, n_rounds=2)
        res_a = fut_a.result()
        res_b = fut_b.result()
    assert len(fut_a.sweep) == len(fut_b.sweep) == len(AMPS)
    assert [j.seed for j in fut_a.sweep] != [j.seed for j in fut_b.sweep]
    assert res_a.population is not res_b.population


def test_resumed_stream_drains_only_the_remainder():
    """A partially consumed stream never re-fires hooks on resume."""
    seen = []
    with Session(fast_config()) as session:
        future = session.submit_experiment("rabi", amplitudes=AMPS,
                                           n_rounds=2)
        for i, _ in enumerate(future.stream(on_result=seen.append)):
            if i == 1:
                break
        future.result(on_result=seen.append)
    labels = [job.label for job in seen]
    assert len(labels) == len(AMPS)
    assert len(set(labels)) == len(AMPS)


def test_session_jobs_stay_out_of_service_wide_stream():
    """Experiment submissions are owned by their future: a service-wide
    iter_completed consumer never sees them."""
    from repro.service import ExperimentService

    with ExperimentService(backend="serial") as service:
        session = Session(fast_config(), service=service)
        loose = service.submit(session.create(
            "allxy", n_rounds=2).build_specs()[0])
        future = session.submit_experiment("rabi", amplitudes=AMPS,
                                           n_rounds=2)
        service_wide = [r.label for r in service.iter_completed()]
        future.result()
    assert service_wide == [loose.result().label]
    assert len(future.sweep) == len(AMPS)


def test_experiment_future_result_is_cached():
    with Session(fast_config()) as session:
        future = session.submit_experiment("allxy", n_rounds=2)
        first = future.result()
        second = future.result()
    assert first is second
    assert future.done()


def test_summary_lines():
    with Session(fast_config()) as session:
        future = session.submit_experiment("rabi", amplitudes=AMPS,
                                           n_rounds=4)
        text = future.summary()
    assert "pi amplitude" in text

    config = MachineConfig(qubits=(0, 1), trace_enabled=False,
                           calibration=PulseCalibration(kappa=0.7))
    with Session(config) as session:
        future = session.submit_experiment("rabi", qubits=(0, 1),
                                           amplitudes=AMPS, n_rounds=2)
        text = future.summary()
    assert "q0:" in text and "q1:" in text


def test_no_internal_caller_trips_the_deprecation_gate():
    """Session runs of every experiment stay silent under the
    DeprecationWarning-as-error filter (nothing internal routes through
    the legacy run_* paths)."""
    delays = [4, 8, 16, 24, 32, 48]
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with Session(fast_config()) as session:
            session.run("rabi", amplitudes=AMPS, n_rounds=2)
            session.run("allxy", n_rounds=2)
            session.run("t1", delays_cycles=delays, n_rounds=2)
