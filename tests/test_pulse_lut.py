"""Tests for the codeword waveform LUT (Table 1, Section 5.1.1)."""

import numpy as np
import pytest

from repro.pulse import (
    PulseCalibration,
    WaveformLUT,
    Waveform,
    build_single_qubit_lut,
    zeros,
)
from repro.pulse.lut import SINGLE_QUBIT_PULSES
from repro.utils.errors import ConfigurationError


def test_upload_and_lookup():
    lut = WaveformLUT()
    w = Waveform("I", zeros(20))
    lut.upload(0, w)
    assert lut.lookup(0) is w
    assert 0 in lut
    assert len(lut) == 1


def test_codeword_range_checked():
    lut = WaveformLUT(max_entries=8)
    with pytest.raises(ConfigurationError):
        lut.upload(8, Waveform("x", zeros(4)))


def test_missing_codeword_raises():
    with pytest.raises(KeyError):
        WaveformLUT().lookup(3)


def test_table1_default_lut_has_seven_pulses():
    lut = build_single_qubit_lut()
    assert len(lut) == 7
    assert lut.codewords() == list(range(7))
    # Table 1 ordering.
    assert lut.lookup(0).name == "I"
    assert lut.lookup(1).name == "X180"
    assert lut.lookup(2).name == "X90"
    assert lut.lookup(3).name == "mX90"
    assert lut.lookup(4).name == "Y180"
    assert lut.lookup(5).name == "Y90"
    assert lut.lookup(6).name == "mY90"


def test_allxy_lut_memory_is_420_bytes():
    # Section 5.1.1: 7 x 2 x 20 ns x Rs samples = 420 bytes at 12 bits.
    lut = build_single_qubit_lut()
    assert lut.memory_bytes() == 420.0


def test_identity_pulse_is_zero():
    assert build_single_qubit_lut().lookup(0).is_zero()


def test_x180_twice_the_x90_amplitude():
    lut = build_single_qubit_lut()
    a180 = np.max(np.abs(lut.lookup(1).samples))
    a90 = np.max(np.abs(lut.lookup(2).samples))
    assert a180 == pytest.approx(2 * a90, rel=1e-9)


def test_y_pulses_in_quadrature():
    lut = build_single_qubit_lut()
    x = lut.lookup(1).samples
    y = lut.lookup(4).samples
    assert np.allclose(y, 1j * x, atol=1e-12)


def test_negative_rotations_flip_sign():
    lut = build_single_qubit_lut()
    assert np.allclose(lut.lookup(3).samples, -lut.lookup(2).samples)
    assert np.allclose(lut.lookup(6).samples, -lut.lookup(5).samples)


def test_amplitude_error_scales_pulses():
    nominal = build_single_qubit_lut()
    off = build_single_qubit_lut(PulseCalibration(amplitude_error=0.10))
    ratio = np.max(np.abs(off.lookup(1).samples)) / np.max(np.abs(nominal.lookup(1).samples))
    assert ratio == pytest.approx(1.10)


def test_phase_error_rotates_axis():
    off = build_single_qubit_lut(PulseCalibration(phase_error_rad=np.pi / 2))
    # With a 90-degree phase error the X180 drives the y axis.
    w = off.lookup(1).samples
    assert np.allclose(w.real, 0, atol=1e-12)


def test_amplitude_overflow_rejected():
    with pytest.raises(ConfigurationError):
        PulseCalibration(kappa=0.01).amplitude_for(np.pi)


def test_pulse_set_covers_allxy_needs():
    # The 21 AllXY pairs draw only from these 7 operations.
    assert set(SINGLE_QUBIT_PULSES) == {"I", "X180", "X90", "mX90", "Y180", "Y90", "mY90"}
