"""Readout engineering: matched filter vs plain demodulation weights."""

import numpy as np
import pytest

from repro.readout import ReadoutParams, transmitted_trace
from repro.readout.resonator import mean_trace
from repro.readout.weights import (
    demodulation_weights,
    integrate,
    matched_filter_weights,
)
from repro.utils import derive_rng

PARAMS = ReadoutParams()
DURATION = 1500


def separation_over_noise(weights: np.ndarray, n_shots: int = 150,
                          seed: int = 0) -> float:
    """SNR of the integration statistic: |mean1 - mean0| / pooled std."""
    rng = derive_rng(seed, "snr")
    stats = {0: [], 1: []}
    for outcome in (0, 1):
        for _ in range(n_shots):
            trace = transmitted_trace(PARAMS, outcome, DURATION, 0, rng)
            stats[outcome].append(integrate(trace, weights))
    mu0, mu1 = np.mean(stats[0]), np.mean(stats[1])
    sigma = np.sqrt(0.5 * (np.var(stats[0]) + np.var(stats[1])))
    return float(abs(mu1 - mu0) / sigma)


def test_demodulation_weights_shape():
    w = demodulation_weights(40e6, DURATION)
    assert len(w) == DURATION
    assert np.max(np.abs(w)) <= 1.0
    # 40 MHz -> 25 ns period.
    assert w[0] == pytest.approx(1.0)
    assert w[25] == pytest.approx(1.0, abs=1e-6)


def test_matched_filter_beats_plain_demodulation():
    """The matched filter is the SNR-optimal linear statistic; plain
    cosine demodulation discards the ring-up/quadrature information."""
    matched = matched_filter_weights(
        mean_trace(PARAMS, 0, DURATION, 0),
        mean_trace(PARAMS, 1, DURATION, 0))
    demod = demodulation_weights(PARAMS.f_if_hz, DURATION)
    snr_matched = separation_over_noise(matched)
    snr_demod = separation_over_noise(demod)
    assert snr_matched > snr_demod


def test_demodulation_still_separates_states():
    demod = demodulation_weights(PARAMS.f_if_hz, DURATION)
    assert separation_over_noise(demod) > 3.0


def test_matched_filter_snr_scales_with_noise():
    quiet = ReadoutParams(noise_std=0.03)
    loud = ReadoutParams(noise_std=0.12)

    def snr(params):
        w = matched_filter_weights(mean_trace(params, 0, DURATION, 0),
                                   mean_trace(params, 1, DURATION, 0))
        rng = derive_rng(1, "scale")
        stats = {0: [], 1: []}
        for outcome in (0, 1):
            for _ in range(80):
                stats[outcome].append(integrate(
                    transmitted_trace(params, outcome, DURATION, 0, rng), w))
        mu0, mu1 = np.mean(stats[0]), np.mean(stats[1])
        sigma = np.sqrt(0.5 * (np.var(stats[0]) + np.var(stats[1])))
        return abs(mu1 - mu0) / sigma

    # Quadrupling the noise roughly quarters the SNR.
    ratio = snr(quiet) / snr(loud)
    assert 2.5 < ratio < 6.5


class TestBatchedReadoutKernels:
    """The replay fast path's batched kernels must be bit-identical to the
    scalar per-shot chain (serial/process backends mix the two)."""

    def test_trace_batch_matches_sequential_draws(self):
        from repro.readout.resonator import (
            ReadoutParams,
            transmitted_trace,
            transmitted_trace_batch,
        )

        params = ReadoutParams()
        outcomes = np.array([0, 1, 1, 0, 1, 0, 0, 1])
        rng_seq = np.random.default_rng(42)
        rng_bat = np.random.default_rng(42)
        seq = np.stack([transmitted_trace(params, int(o), 300, 0, rng_seq)
                        for o in outcomes])
        bat = transmitted_trace_batch(params, outcomes, 300, 0, rng_bat)
        assert np.array_equal(seq, bat)
        # and the generators end in the same stream position
        assert rng_seq.random() == rng_bat.random()

    def test_trace_batch_noise_free(self):
        from repro.readout.resonator import (
            ReadoutParams,
            transmitted_trace,
            transmitted_trace_batch,
        )

        params = ReadoutParams(noise_std=0.0)
        rng = np.random.default_rng(0)
        bat = transmitted_trace_batch(params, [0, 1], 200, 0, rng)
        assert np.array_equal(bat[1], transmitted_trace(params, 1, 200, 0, rng))
        assert rng.random() == np.random.default_rng(0).random()  # no draws

    def test_integrate_batch_matches_scalar(self):
        from repro.readout.weights import integrate, integrate_batch

        rng = np.random.default_rng(3)
        traces = rng.normal(size=(17, 400))
        weights = rng.normal(size=350)  # shorter than the traces
        batch = integrate_batch(traces, weights)
        scalar = np.array([integrate(t, weights) for t in traces])
        assert np.array_equal(batch, scalar)

    def test_adc_quantize_overwrite_matches(self):
        from repro.readout.adc import adc_quantize

        x = np.random.default_rng(9).normal(0, 0.5, (40, 100))
        plain = adc_quantize(x)
        inplace = adc_quantize(x.copy(), overwrite=True)
        assert np.array_equal(plain, inplace)
        assert np.array_equal(x, np.asarray(x))  # plain path left input alone

    def test_dcu_record_batch_matches_record(self):
        from repro.readout.data_collection import DataCollectionUnit

        values = np.random.default_rng(1).normal(size=12)
        one = DataCollectionUnit(3)
        two = DataCollectionUnit(3)
        for v in values:
            one.record(v)
        two.record_batch(values)
        assert np.array_equal(one.averages(), two.averages())
        assert np.array_equal(one.raw(), two.raw())
