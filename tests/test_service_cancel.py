"""``JobFuture.cancel()`` on still-queued jobs, across every backend.

The cancellation contract (satellite of the fleet PR, but backend
agnostic):

* cancelling a future that has not started resolves it with
  :class:`JobCancelled` — it counts as ``cancelled`` in ``stats()``,
  never as ``failed``, and never lands in quarantine;
* a cancelled future does not block ``drain()``;
* the *other* jobs of the sweep are untouched: their results stay
  bit-identical to a run that never cancelled anything;
* cancel() is a race the caller may lose — on a backend that resolves
  futures eagerly (serial) or a job that already started, it returns
  False and the job's real outcome stands.

Set ``REPRO_SERVICE_BACKEND`` to pin the parametrized backend (the CI
matrix runs one backend per job; the fleet job adds loopback daemons).
"""

import os

import numpy as np
import pytest

from repro.compiler import CompilerOptions, QuantumProgram
from repro.core import MachineConfig
from repro.pulse import PulseCalibration
from repro.service import ExperimentService, JobSpec
from repro.service.fleet import WorkerServer
from repro.utils.errors import JobCancelled

ALL_BACKENDS = ("serial", "process", "async")
_PINNED = os.environ.get("REPRO_SERVICE_BACKEND")
BACKENDS_UNDER_TEST = (_PINNED,) if _PINNED else ALL_BACKENDS


def fast_config():
    return MachineConfig(qubits=(2,), trace_enabled=False,
                         calibration=PulseCalibration(kappa=0.7))


def flip_spec(seed, label="", n_rounds=2, replay=True):
    p = QuantumProgram("flip", qubits=(2,))
    p.new_kernel("k").prepz(2).x(2).measure(2)
    return JobSpec(config=fast_config(), program=p,
                   compiler_options=CompilerOptions(n_rounds=n_rounds),
                   seed=seed, label=label, replay=replay)


def slow_spec(seed, label=""):
    return flip_spec(seed, label=label, n_rounds=300, replay=False)


@pytest.fixture(params=BACKENDS_UNDER_TEST)
def service(request):
    """A one-lane service per backend, so submissions actually queue."""
    backend = request.param
    if backend == "fleet":
        worker = WorkerServer(slots=1).start()
        svc = ExperimentService(backend="fleet",
                                fleet_workers=["%s:%d" % worker.address])
        yield svc
        svc.close()
        worker.stop()
    else:
        svc = ExperimentService(backend=backend, workers=1)
        yield svc
        svc.close()


class TestCancelQueued:
    def test_cancelled_futures_are_not_failures(self, service):
        head = service.submit(slow_spec(1, "head"), stream=False)
        queued = [service.submit(slow_spec(i + 2, f"q{i}"), stream=False)
                  for i in range(3)]
        wins = [f.cancel() for f in queued]
        service.drain(timeout=120.0)
        stats = service.stats()["routes"]["quma"]

        assert head.exception() is None  # the running job is untouched
        assert stats["failed"] == 0
        assert stats["cancelled"] == sum(wins)
        assert stats["quarantined"] == 0
        for future, won in zip(queued, wins):
            assert future.done()
            if won:
                assert future.cancelled()
                with pytest.raises(JobCancelled):
                    future.result()
            else:
                assert future.exception() is None  # lost race: job ran

    def test_survivors_stay_bit_identical(self, service):
        keep = [slow_spec(i + 1, f"keep{i}") for i in range(2)]
        with ExperimentService(backend="serial") as ref_svc:
            ref = [ref_svc.submit(s).result(timeout=120.0) for s in keep]

        victim = service.submit(slow_spec(100, "victim"), stream=False)
        futures = [service.submit(s, stream=False) for s in keep]
        service.submit(slow_spec(200, "casualty"), stream=False).cancel()
        service.drain(timeout=120.0)
        del victim  # first submission may have run: that's fine

        for expect, future in zip(ref, futures):
            got = future.result(timeout=120.0)
            assert got.seed == expect.seed
            np.testing.assert_array_equal(got.averages, expect.averages)

    def test_cancel_after_completion_is_refused(self, service):
        future = service.submit(flip_spec(7), stream=False)
        future.result(timeout=120.0)
        assert not future.cancel()
        assert not future.cancelled()
        assert future.exception() is None

    def test_drain_completes_with_only_cancelled_jobs(self, service):
        head = service.submit(slow_spec(1), stream=False)
        tail = [service.submit(slow_spec(i + 2), stream=False)
                for i in range(4)]
        for f in tail:
            f.cancel()
        service.drain(timeout=120.0)  # must not hang on cancelled futures
        assert head.done() and all(f.done() for f in tail)
        assert service.stats()["routes"]["quma"]["pending"] == 0
