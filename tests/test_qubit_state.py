"""Tests for the n-qubit density matrix."""

import numpy as np
import pytest

from repro.qubit import CNOT, CZ, DensityMatrix, HADAMARD, PAULI_X, rx, ry


def test_ground_state():
    dm = DensityMatrix.ground(2)
    assert dm.trace() == pytest.approx(1.0)
    assert dm.prob_one(0) == pytest.approx(0.0)
    assert dm.prob_one(1) == pytest.approx(0.0)
    assert dm.purity() == pytest.approx(1.0)


def test_x_on_qubit0_of_two():
    dm = DensityMatrix.ground(2)
    dm.apply_unitary(PAULI_X, (0,))
    assert dm.prob_one(0) == pytest.approx(1.0)
    assert dm.prob_one(1) == pytest.approx(0.0)


def test_x_on_qubit1_of_two():
    dm = DensityMatrix.ground(2)
    dm.apply_unitary(PAULI_X, (1,))
    assert dm.prob_one(0) == pytest.approx(0.0)
    assert dm.prob_one(1) == pytest.approx(1.0)


def test_qubit0_is_least_significant():
    dm = DensityMatrix.ground(2)
    dm.apply_unitary(PAULI_X, (0,))
    # |01> in |q1 q0> order = basis index 1.
    assert dm.data[1, 1] == pytest.approx(1.0)


def test_unitary_embedding_matches_kron():
    rng = np.random.default_rng(2)
    dm = DensityMatrix.ground(3)
    # Random product state first.
    for q in range(3):
        dm.apply_unitary(rx(rng.uniform(0, np.pi)), (q,))
    u = ry(0.7)
    ref = dm.copy()
    dm.apply_unitary(u, (1,))
    # Reference: kron embedding (qubit order q2 q1 q0 in index).
    full = np.kron(np.kron(np.eye(2), u), np.eye(2))
    expected = full @ ref.data @ full.conj().T
    assert np.allclose(dm.data, expected)


def test_two_qubit_unitary_embedding_matches_kron():
    rng = np.random.default_rng(3)
    dm = DensityMatrix.ground(3)
    for q in range(3):
        dm.apply_unitary(rx(rng.uniform(0, np.pi)), (q,))
    ref = dm.copy()
    # CZ on (q2, q0): first listed qubit is MSB of the 4x4 operator.
    dm.apply_unitary(CZ, (2, 0))
    # Build reference with explicit basis mapping.
    full = np.zeros((8, 8), dtype=complex)
    for idx in range(8):
        q2, q0 = (idx >> 2) & 1, idx & 1
        sub = (q2 << 1) | q0
        for jdx in range(8):
            p2, p0 = (jdx >> 2) & 1, jdx & 1
            if (jdx & 0b010) != (idx & 0b010):
                continue
            full[idx, jdx] = CZ[sub, (p2 << 1) | p0]
    expected = full @ ref.data @ full.conj().T
    assert np.allclose(dm.data, expected)


def test_bell_state_via_h_cnot():
    dm = DensityMatrix.ground(2)
    dm.apply_unitary(HADAMARD, (1,))
    dm.apply_unitary(CNOT, (1, 0))  # control q1, target q0
    assert dm.prob_one(0) == pytest.approx(0.5)
    assert dm.prob_one(1) == pytest.approx(0.5)
    bell = np.array([1, 0, 0, 1], dtype=complex) / np.sqrt(2)
    assert dm.fidelity_pure(bell) == pytest.approx(1.0)


def test_projection_collapses_entanglement():
    dm = DensityMatrix.ground(2)
    dm.apply_unitary(HADAMARD, (1,))
    dm.apply_unitary(CNOT, (1, 0))
    p = dm.project(0, 1)
    assert p == pytest.approx(0.5)
    assert dm.prob_one(1) == pytest.approx(1.0)
    assert dm.trace() == pytest.approx(1.0)


def test_project_zero_probability_raises():
    dm = DensityMatrix.ground(1)
    with pytest.raises(ValueError):
        dm.project(0, 1)


def test_sample_measure_statistics():
    rng = np.random.default_rng(7)
    ones = 0
    for _ in range(400):
        dm = DensityMatrix.ground(1)
        dm.apply_unitary(rx(np.pi / 2), (0,))
        ones += dm.sample_measure(0, rng)
    assert 140 < ones < 260  # ~200 expected


def test_sample_measure_collapses():
    rng = np.random.default_rng(8)
    dm = DensityMatrix.ground(1)
    dm.apply_unitary(rx(np.pi / 2), (0,))
    out = dm.sample_measure(0, rng)
    assert dm.prob_one(0) == pytest.approx(float(out))


def test_bloch_vector():
    dm = DensityMatrix.ground(1)
    assert dm.bloch(0) == pytest.approx((0.0, 0.0, 1.0))
    dm.apply_unitary(rx(np.pi / 2), (0,))
    x, y, z = dm.bloch(0)
    assert z == pytest.approx(0.0, abs=1e-12)
    assert abs(y) == pytest.approx(1.0, abs=1e-12)


def test_reduced_of_product_state():
    dm = DensityMatrix.ground(2)
    dm.apply_unitary(PAULI_X, (1,))
    r0 = dm.reduced(0)
    r1 = dm.reduced(1)
    assert np.allclose(r0, [[1, 0], [0, 0]])
    assert np.allclose(r1, [[0, 0], [0, 1]])


def test_from_statevector():
    psi = np.array([1, 1], dtype=complex)
    dm = DensityMatrix.from_statevector(psi)
    assert dm.prob_one(0) == pytest.approx(0.5)
    assert dm.is_physical()


def test_is_physical_flags_bad_trace():
    dm = DensityMatrix.ground(1)
    dm.data = dm.data * 2.0
    assert not dm.is_physical()


def test_invalid_shapes_rejected():
    with pytest.raises(ValueError):
        DensityMatrix(1, np.eye(3))
    dm = DensityMatrix.ground(2)
    with pytest.raises(ValueError):
        dm.apply_unitary(np.eye(2), (0, 1))
    with pytest.raises(ValueError):
        dm.apply_unitary(np.eye(4), (0, 0))
    with pytest.raises(ValueError):
        dm.apply_unitary(np.eye(2), (5,))
