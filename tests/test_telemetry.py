"""Telemetry parity and span/metrics plumbing through the job lifecycle.

The hard constraint under test: telemetry on or off, simulator tracing
on or off, every registered experiment produces **bit-identical**
``averages`` on every backend — observability never touches the RNG
streams.  Plus the plumbing: spans rebase onto the submitter's clock
across the process boundary, queue-wait is stamped on every job, sweep
artifacts round-trip their per-stage rollups, and the CLI emits valid
Chrome traces and metrics artifacts.

Set ``REPRO_SERVICE_BACKEND=serial|process|async`` to pin the
parametrized backend (the CI matrix runs one backend per job).
"""

import json

import numpy as np
import pytest

from repro import Session
from repro.obs import (
    STAGE_QUEUE_WAIT,
    load_metrics_artifact,
    validate_chrome_trace,
)
from repro.service import SweepResult
from test_entangling import BACKENDS_UNDER_TEST, FAST_PARAMS


def _canonical(backend: str, name: str, telemetry: bool,
               sim_trace: bool = False):
    """(canonical job stream, jobs) for one experiment run.

    Drains with ``stream(fit=False)`` like the cross-backend parity
    suite — the FAST_PARAMS sweeps are deliberately too small for some
    analyses to fit, and fits are irrelevant to the telemetry contract.
    """
    targets, params = FAST_PARAMS[name]
    with Session(backend=backend, workers=2, seed=11, telemetry=telemetry,
                 sim_trace=sim_trace) as session:
        future = session.submit_experiment(name, targets=targets, **params)
        for _ in future.stream(fit=False):
            pass
        jobs = [f.result() for f in future.futures]
    stream = [(job.label, job.seed,
               np.asarray(job.averages).tobytes(),
               None if job.joint_counts is None
               else np.asarray(job.joint_counts).tobytes()) for job in jobs]
    return stream, jobs


# -- bit-identical averages, tracing on vs off -------------------------------


@pytest.mark.parametrize("name", sorted(FAST_PARAMS))
def test_telemetry_bit_identical_on_serial(name):
    """Every registered experiment: spans + sim tracing change nothing."""
    off, _ = _canonical("serial", name, telemetry=False)
    on, jobs = _canonical("serial", name, telemetry=True, sim_trace=True)
    assert off == on
    for job in jobs:
        assert job.telemetry is not None
        assert job.telemetry.rebased
        assert len(job.telemetry.sim_trace) > 0


@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("name", sorted(FAST_PARAMS))
def test_telemetry_parity_across_backends(name, backend):
    off, _ = _canonical(backend, name, telemetry=False)
    on, _ = _canonical(backend, name, telemetry=True)
    assert off == on


# -- span rebasing across the process boundary -------------------------------


def _assert_coherent_spans(jobs, worker_prefix="pid:"):
    for job in jobs:
        tel = job.telemetry
        assert tel is not None and tel.rebased
        assert tel.worker.startswith(worker_prefix)
        names = [span.name for span in tel.spans]
        assert names[0] == STAGE_QUEUE_WAIT
        assert "compile" in names and "machine-acquire" in names
        assert "execute" in names or "replay" in names
        assert names[-1] == "collect"
        # Rebased onto one coherent submitter clock: monotone,
        # queue-wait ends exactly where the first worker stage starts.
        for span in tel.spans:
            assert span.end_s >= span.start_s
        assert tel.spans[0].end_s == pytest.approx(tel.spans[1].start_s)
        starts = [span.start_s for span in tel.spans]
        assert starts == sorted(starts)
        assert job.queue_wait_s >= 0.0
        assert job.total_s >= job.compile_s + job.execute_s - 1e-9


def test_spans_rebase_on_serial():
    _, jobs = _canonical("serial", "rabi", telemetry=True)
    _assert_coherent_spans(jobs)


@pytest.mark.slow
def test_spans_rebase_across_process_boundary():
    """Worker-relative spans land on the parent clock after resolve."""
    with Session(backend="process", workers=2, seed=3,
                 telemetry=True) as session:
        future = session.submit_experiment(
            "rabi", amplitudes=[0.0, 0.3, 0.6], n_rounds=2)
        for _ in future.stream(fit=False):
            pass
        jobs = [f.result() for f in future.futures]
        service_stats = session.stats()
    _assert_coherent_spans(jobs)
    # Worker metrics snapshots came home and merged.
    metrics = service_stats["metrics"]
    assert metrics["service"]["counters"]["service.jobs"] == 3
    assert metrics["workers_merged"]["counters"]["jobs"] == 3
    assert all(w.startswith("pid:") for w in metrics["workers"])


# -- queue-wait + stage rollups ----------------------------------------------


def test_queue_wait_recorded_without_telemetry():
    """The scalar stamps ride on every job, telemetry flag or not."""
    with Session(seed=5) as session:
        future = session.submit_experiment(
            "rabi", amplitudes=[0.0, 0.4], n_rounds=2)
        for _ in future.stream(fit=False):
            pass
    for job in (f.result() for f in future.futures):
        assert job.queue_wait_s >= 0.0
        assert job.total_s > 0.0
        assert job.telemetry is None  # off means off


def test_sweep_stage_stats_aggregate_and_round_trip(tmp_path):
    with Session(seed=5) as session:
        future = session.submit_experiment(
            "rabi", amplitudes=[0.0, 0.2, 0.4], n_rounds=2)
        future.result()
        assert future.stage_stats() is future.sweep.stage_stats
    sweep = future.sweep
    n = len(sweep.jobs)
    for field in ("queue_wait_s", "compile_s", "execute_s", "total_s"):
        stats = sweep.stage_stats[field]
        assert stats["count"] == n
        assert stats["p50"] is not None and stats["p95"] >= stats["p50"]
    assert sweep.stage_stats["throughput_jobs_per_s"] > 0
    path = str(tmp_path / "sweep.json")
    sweep.save(path)
    loaded = SweepResult.load(path)
    assert loaded.stage_stats == sweep.stage_stats
    for a, b in zip(sweep.jobs, loaded.jobs):
        assert b.total_s == a.total_s
        assert b.queue_wait_s == a.queue_wait_s


def test_legacy_artifact_without_stage_stats_rebuilds(tmp_path):
    with Session(seed=5) as session:
        future = session.submit_experiment(
            "rabi", amplitudes=[0.0, 0.2, 0.4], n_rounds=2)
        future.result()
    path = str(tmp_path / "sweep.json")
    future.sweep.save(path)
    with open(path) as f:
        data = json.load(f)
    del data["stage_stats"]  # pre-telemetry artifact shape
    for entry in data["jobs"]:
        del entry["total_s"], entry["queue_wait_s"]
    with open(path, "w") as f:
        json.dump(data, f)
    loaded = SweepResult.load(path)
    assert loaded.stage_stats["compile_s"]["count"] == 3
    assert loaded.jobs[0].total_s == 0.0


# -- CLI: trace + metrics artifacts ------------------------------------------


def test_cli_exp_emits_trace_and_metrics(tmp_path, capsys):
    from repro.cli import main

    trace = str(tmp_path / "trace.json")
    metrics = str(tmp_path / "metrics.json")
    rc = main(["exp", "bell", "--qubits", "0-1", "--param", "n_rounds=4",
               "--trace-out", trace, "--metrics-out", metrics])
    assert rc == 0
    assert validate_chrome_trace(trace) > 0
    with open(trace) as f:
        events = json.load(f)["traceEvents"]
    cats = {e.get("cat") for e in events if e["ph"] != "M"}
    assert cats == {"service", "sim"}  # both timelines in one file
    span_names = {e["name"] for e in events
                  if e["ph"] == "X" and e["cat"] == "service"}
    assert {"queue-wait", "compile", "machine-acquire",
            "collect"} <= span_names
    data = load_metrics_artifact(metrics)
    assert data["metrics"]["service"]["counters"]["service.jobs"] >= 1
    assert data["stage_stats"]["execute_s"]["count"] >= 1
    capsys.readouterr()
    assert main(["stats", metrics]) == 0
    out = capsys.readouterr().out
    assert "per-stage latency" in out
    assert "service.jobs" in out


def test_cli_stats_rejects_foreign_json(tmp_path, capsys):
    from repro.cli import main

    path = str(tmp_path / "not_metrics.json")
    with open(path, "w") as f:
        json.dump({"foo": 1}, f)
    assert main(["stats", path]) == 2
