"""Compile cache and fingerprint determinism."""

import pytest

from repro.compiler import CompilerOptions, QuantumProgram
from repro.core import MachineConfig
from repro.service import CompileCache, program_fingerprint


def flip_program(name="flip"):
    p = QuantumProgram(name, qubits=(2,))
    p.new_kernel("k").prepz(2).x(2).measure(2)
    return p


class TestConfigFingerprint:
    def test_equal_configs_equal_digests(self):
        assert MachineConfig(qubits=(2,)).fingerprint() == \
            MachineConfig(qubits=(2,)).fingerprint()

    def test_any_field_changes_the_digest(self):
        base = MachineConfig(qubits=(2,)).fingerprint()
        assert MachineConfig(qubits=(2,), seed=1).fingerprint() != base
        assert MachineConfig(qubits=(2,), msmt_cycles=200).fingerprint() != base
        assert MachineConfig(qubits=(2, 5)).fingerprint() != base

    def test_nested_dataclasses_participate(self):
        from repro.pulse import PulseCalibration

        base = MachineConfig(qubits=(2,)).fingerprint()
        tweaked = MachineConfig(
            qubits=(2,),
            calibration=PulseCalibration(kappa=0.7)).fingerprint()
        assert tweaked != base

    def test_exclude_drops_fields(self):
        a = MachineConfig(qubits=(2,), dcu_points=1)
        b = MachineConfig(qubits=(2,), dcu_points=42)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint(exclude=("dcu_points",)) == \
            b.fingerprint(exclude=("dcu_points",))


class TestProgramFingerprint:
    def test_stable_for_equal_structure(self):
        assert program_fingerprint(flip_program()) == \
            program_fingerprint(flip_program())

    def test_differs_on_gate_change(self):
        p = QuantumProgram("flip", qubits=(2,))
        p.new_kernel("k").prepz(2).y(2).measure(2)
        assert program_fingerprint(p) != program_fingerprint(flip_program())

    def test_differs_on_kernel_order(self):
        a = QuantumProgram("p", qubits=(2,))
        a.new_kernel("k1").x(2).measure(2)
        a.new_kernel("k2").y(2).measure(2)
        b = QuantumProgram("p", qubits=(2,))
        b.new_kernel("k2").y(2).measure(2)
        b.new_kernel("k1").x(2).measure(2)
        assert program_fingerprint(a) != program_fingerprint(b)


class TestCompileCache:
    def test_codegen_miss_then_hit(self):
        cache = CompileCache()
        opts = CompilerOptions(n_rounds=2)
        asm1, k1 = cache.compiled_for(flip_program(), opts)
        asm2, k2 = cache.compiled_for(flip_program(), opts)
        assert (asm1, k1) == (asm2, k2)
        assert cache.codegen_misses == 1
        assert cache.codegen_hits == 1

    def test_options_change_is_a_miss(self):
        cache = CompileCache()
        cache.compiled_for(flip_program(), CompilerOptions(n_rounds=2))
        cache.compiled_for(flip_program(), CompilerOptions(n_rounds=3))
        assert cache.codegen_misses == 2

    def test_assembly_hit_returns_same_program_object(self):
        cache = CompileCache()
        asm = "    Wait 4\n    Pulse {q2}, X180\n    halt\n"
        prog1, hit1 = cache.assembled_for(asm)
        prog2, hit2 = cache.assembled_for(asm)
        assert not hit1 and hit2
        assert prog1 is prog2

    def test_extra_ops_change_the_key(self):
        cache = CompileCache()
        asm = "    Wait 4\n    Pulse {q2}, SCRATCH\n    halt\n"
        prog, hit = cache.assembled_for(asm, extra_ops=("SCRATCH",))
        assert not hit
        # Same text without the scratch op cannot assemble: distinct key.
        with pytest.raises(Exception):
            cache.assembled_for(asm)

    def test_eviction_bounds_entries(self):
        cache = CompileCache(max_entries=2)
        for i in range(5):
            cache.assembled_for(f"    Wait {i + 1}\n    halt\n")
        assert cache.stats()["entries"] <= 4  # 2 per level


class TestResolve:
    def test_program_spec_resolves_with_k(self):
        from repro.service import JobSpec

        cache = CompileCache()
        spec = JobSpec(config=MachineConfig(qubits=(2,)),
                       program=flip_program(),
                       compiler_options=CompilerOptions(n_rounds=2))
        r1 = cache.resolve(spec)
        r2 = cache.resolve(spec)
        assert r1.k_points == 1
        assert not r1.cache_hit and r2.cache_hit
        assert r1.program is r2.program


class TestSpillFormatVersion:
    """Defensive reads of the disk-spill format (``CACHE_FORMAT`` tag).

    A shared spill directory may hold entries written by another
    release, a dying writer, or something else entirely; every such
    entry must degrade to a recompute (a miss counted in
    ``disk_rejects``), never an exception or a wrong program.
    """

    def _warm(self, tmp_path):
        cache = CompileCache(persist_dir=tmp_path)
        cache.assembled_for("    Wait 4\n    halt\n")
        spills = sorted(p for p in tmp_path.iterdir()
                        if not p.name.startswith("."))
        assert spills, "expected at least one spilled entry"
        return spills

    def _cold_stats(self, tmp_path):
        cold = CompileCache(persist_dir=tmp_path)
        cold.assembled_for("    Wait 4\n    halt\n")
        return cold.stats()

    def test_spills_carry_the_format_tag(self, tmp_path):
        import json

        from repro.service.cache import CACHE_FORMAT

        for path in self._warm(tmp_path):
            assert json.loads(path.read_bytes())["format"] == CACHE_FORMAT

    def test_corrupt_json_is_a_miss_not_a_crash(self, tmp_path):
        for path in self._warm(tmp_path):
            path.write_bytes(b"\x00\xffnot json")
        stats = self._cold_stats(tmp_path)
        assert stats["disk_hits"] == 0
        assert stats["disk_rejects"] >= 1
        assert stats["assembly_misses"] == 1  # recomputed cleanly

    def test_missing_format_tag_is_a_miss(self, tmp_path):
        import json

        for path in self._warm(tmp_path):
            data = json.loads(path.read_bytes())
            del data["format"]
            path.write_text(json.dumps(data))
        stats = self._cold_stats(tmp_path)
        assert stats["disk_hits"] == 0 and stats["disk_rejects"] >= 1

    def test_mismatched_format_version_is_a_miss(self, tmp_path):
        import json

        for path in self._warm(tmp_path):
            data = json.loads(path.read_bytes())
            data["format"] = "repro.cache/v999"
            path.write_text(json.dumps(data))
        stats = self._cold_stats(tmp_path)
        assert stats["disk_hits"] == 0 and stats["disk_rejects"] >= 1

    def test_missing_fields_are_a_miss(self, tmp_path):
        import json

        from repro.service.cache import CACHE_FORMAT

        for path in self._warm(tmp_path):
            path.write_text(json.dumps({"format": CACHE_FORMAT}))
        stats = self._cold_stats(tmp_path)
        assert stats["disk_hits"] == 0 and stats["disk_rejects"] >= 1

    def test_rejected_entry_is_respilled_by_the_recompute(self, tmp_path):
        spills = self._warm(tmp_path)
        for path in spills:
            path.write_bytes(b"garbage")
        self._cold_stats(tmp_path)  # recomputes and re-spills
        fresh = CompileCache(persist_dir=tmp_path)
        fresh.assembled_for("    Wait 4\n    halt\n")
        assert fresh.stats()["disk_hits"] >= 1
        assert fresh.stats()["disk_rejects"] == 0

    def test_undecodable_binary_body_is_a_miss(self, tmp_path):
        import json

        from repro.service.cache import CACHE_FORMAT

        for path in self._warm(tmp_path):
            path.write_text(json.dumps({
                "format": CACHE_FORMAT, "binary": "zz-not-hex",
                "uprogs": []}))
        stats = self._cold_stats(tmp_path)
        # Valid envelope (counted as a disk hit on load) but the body
        # fails to decode: rejected, and the program is recomputed.
        assert stats["disk_rejects"] >= 1
        assert stats["assembly_misses"] == 1
