"""Compile cache and fingerprint determinism."""

import pytest

from repro.compiler import CompilerOptions, QuantumProgram
from repro.core import MachineConfig
from repro.service import CompileCache, program_fingerprint


def flip_program(name="flip"):
    p = QuantumProgram(name, qubits=(2,))
    p.new_kernel("k").prepz(2).x(2).measure(2)
    return p


class TestConfigFingerprint:
    def test_equal_configs_equal_digests(self):
        assert MachineConfig(qubits=(2,)).fingerprint() == \
            MachineConfig(qubits=(2,)).fingerprint()

    def test_any_field_changes_the_digest(self):
        base = MachineConfig(qubits=(2,)).fingerprint()
        assert MachineConfig(qubits=(2,), seed=1).fingerprint() != base
        assert MachineConfig(qubits=(2,), msmt_cycles=200).fingerprint() != base
        assert MachineConfig(qubits=(2, 5)).fingerprint() != base

    def test_nested_dataclasses_participate(self):
        from repro.pulse import PulseCalibration

        base = MachineConfig(qubits=(2,)).fingerprint()
        tweaked = MachineConfig(
            qubits=(2,),
            calibration=PulseCalibration(kappa=0.7)).fingerprint()
        assert tweaked != base

    def test_exclude_drops_fields(self):
        a = MachineConfig(qubits=(2,), dcu_points=1)
        b = MachineConfig(qubits=(2,), dcu_points=42)
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint(exclude=("dcu_points",)) == \
            b.fingerprint(exclude=("dcu_points",))


class TestProgramFingerprint:
    def test_stable_for_equal_structure(self):
        assert program_fingerprint(flip_program()) == \
            program_fingerprint(flip_program())

    def test_differs_on_gate_change(self):
        p = QuantumProgram("flip", qubits=(2,))
        p.new_kernel("k").prepz(2).y(2).measure(2)
        assert program_fingerprint(p) != program_fingerprint(flip_program())

    def test_differs_on_kernel_order(self):
        a = QuantumProgram("p", qubits=(2,))
        a.new_kernel("k1").x(2).measure(2)
        a.new_kernel("k2").y(2).measure(2)
        b = QuantumProgram("p", qubits=(2,))
        b.new_kernel("k2").y(2).measure(2)
        b.new_kernel("k1").x(2).measure(2)
        assert program_fingerprint(a) != program_fingerprint(b)


class TestCompileCache:
    def test_codegen_miss_then_hit(self):
        cache = CompileCache()
        opts = CompilerOptions(n_rounds=2)
        asm1, k1 = cache.compiled_for(flip_program(), opts)
        asm2, k2 = cache.compiled_for(flip_program(), opts)
        assert (asm1, k1) == (asm2, k2)
        assert cache.codegen_misses == 1
        assert cache.codegen_hits == 1

    def test_options_change_is_a_miss(self):
        cache = CompileCache()
        cache.compiled_for(flip_program(), CompilerOptions(n_rounds=2))
        cache.compiled_for(flip_program(), CompilerOptions(n_rounds=3))
        assert cache.codegen_misses == 2

    def test_assembly_hit_returns_same_program_object(self):
        cache = CompileCache()
        asm = "    Wait 4\n    Pulse {q2}, X180\n    halt\n"
        prog1, hit1 = cache.assembled_for(asm)
        prog2, hit2 = cache.assembled_for(asm)
        assert not hit1 and hit2
        assert prog1 is prog2

    def test_extra_ops_change_the_key(self):
        cache = CompileCache()
        asm = "    Wait 4\n    Pulse {q2}, SCRATCH\n    halt\n"
        prog, hit = cache.assembled_for(asm, extra_ops=("SCRATCH",))
        assert not hit
        # Same text without the scratch op cannot assemble: distinct key.
        with pytest.raises(Exception):
            cache.assembled_for(asm)

    def test_eviction_bounds_entries(self):
        cache = CompileCache(max_entries=2)
        for i in range(5):
            cache.assembled_for(f"    Wait {i + 1}\n    halt\n")
        assert cache.stats()["entries"] <= 4  # 2 per level


class TestResolve:
    def test_program_spec_resolves_with_k(self):
        from repro.service import JobSpec

        cache = CompileCache()
        spec = JobSpec(config=MachineConfig(qubits=(2,)),
                       program=flip_program(),
                       compiler_options=CompilerOptions(n_rounds=2))
        r1 = cache.resolve(spec)
        r2 = cache.resolve(spec)
        assert r1.k_points == 1
        assert not r1.cache_hit and r2.cache_hit
        assert r1.program is r2.program
