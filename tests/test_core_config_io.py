"""Tests for machine-configuration serialization."""

import json

import pytest

from repro.core import MachineConfig, QuMA
from repro.core.config_io import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.pulse import PulseCalibration
from repro.qubit import TransmonParams
from repro.readout import ReadoutParams
from repro.utils.errors import ConfigurationError


def rich_config() -> MachineConfig:
    return MachineConfig(
        qubits=(0, 2),
        transmons=(TransmonParams(t1_ns=9000.0, t2_ns=7000.0),
                   TransmonParams()),
        readouts=(ReadoutParams(f_if_hz=40e6), ReadoutParams(f_if_hz=55e6)),
        calibration=PulseCalibration(amplitude_error=0.01),
        flux_pairs=((0, 2),),
        classical_jitter_ns=7,
        issue_width=2,
        queue_capacity=32,
        seed=11,
    )


def test_roundtrip_preserves_everything():
    config = rich_config()
    back = config_from_dict(config_to_dict(config))
    assert config_to_dict(back) == config_to_dict(config)
    assert back.qubits == (0, 2)
    assert back.transmons[0].t1_ns == 9000.0
    assert back.readouts[1].f_if_hz == 55e6
    assert back.calibration.amplitude_error == 0.01
    assert back.flux_pairs == ((0, 2),)
    assert back.issue_width == 2


def test_dict_is_json_serializable():
    text = json.dumps(config_to_dict(rich_config()))
    assert "transmons" in text


def test_file_roundtrip(tmp_path):
    path = tmp_path / "machine.json"
    save_config(rich_config(), str(path))
    back = load_config(str(path))
    assert config_to_dict(back) == config_to_dict(rich_config())


def test_unknown_keys_rejected():
    data = config_to_dict(MachineConfig(qubits=(2,)))
    data["frobnicate"] = 1
    with pytest.raises(ConfigurationError):
        config_from_dict(data)


def test_partial_dict_uses_defaults():
    config = config_from_dict({"qubits": [2], "seed": 5})
    assert config.qubits == (2,)
    assert config.seed == 5
    assert config.ctpg_delay_ns == 80


def test_loaded_config_builds_running_machine(tmp_path):
    path = tmp_path / "machine.json"
    save_config(MachineConfig(qubits=(2,), seed=4), str(path))
    machine = QuMA(load_config(str(path)))
    machine.load("Wait 4\nPulse {q2}, X180\nWait 4\nMPG {q2}, 300\nMD {q2}, r7\nhalt")
    result = machine.run()
    assert result.completed
    assert machine.registers.read(7) == 1


def test_cli_run_with_config(tmp_path, capsys):
    from repro.cli import main

    cfg = tmp_path / "m.json"
    save_config(MachineConfig(qubits=(3,), seed=1), str(cfg))
    prog = tmp_path / "p.qasm"
    prog.write_text("Wait 4\nPulse {q3}, X180\nWait 4\nMPG {q3}, 300\nMD {q3}, r7\nhalt")
    rc = main(["run", str(prog), "--config", str(cfg)])
    assert rc == 0
    assert "'r7': 1" in capsys.readouterr().out
