"""Error-mitigation subsystem: folding, extrapolation, readout inversion,
and the registered ``mitigated`` experiment wrapper."""

import numpy as np
import pytest

from repro import MachineConfig, Session
from repro.experiments import REGISTRY
from repro.experiments.entangling import _correlation, _marginal_one
from repro.mitigation import (
    INVERSES,
    MitigatedExperiment,
    ReadoutMitigator,
    ZNEMitigator,
    confusion_matrix,
    correct_counts,
    correct_probabilities,
    extrapolate_to_zero,
    extrapolation_weights,
    fold_asm,
    fold_counts,
    fold_ops,
    fold_rng,
    noise_amplification,
)
from repro.compiler.ir import Op, OpKind
from repro.readout import ReadoutParams
from repro.readout.multiplex import staggered_readouts
from repro.service.job import SweepResult
from repro.utils.errors import CalibrationError, ConfigurationError


def pair_config(**kwargs):
    kwargs.setdefault("qubits", (0, 1))
    kwargs.setdefault("flux_pairs", ((0, 1),))
    kwargs.setdefault("readouts", (ReadoutParams(f_if_hz=40e6),
                                   ReadoutParams(f_if_hz=52e6)))
    kwargs.setdefault("trace_enabled", False)
    kwargs.setdefault("calibration_shots", 40)
    return MachineConfig(**kwargs)


# -- gate folding -------------------------------------------------------------


def test_fold_counts_realize_requested_scale():
    rng = fold_rng(0, 1)
    # d = round((scale-1) * n / 2) total folds, distributed uniformly.
    assert fold_counts(4, 3.0, rng).tolist() == [1, 1, 1, 1]
    counts = fold_counts(4, 2.0, fold_rng(0, 1))
    assert counts.sum() == 2 and counts.max() == 1
    assert fold_counts(5, 1.0, rng).tolist() == [0] * 5
    assert fold_counts(0, 3.0, rng).tolist() == []


def test_fold_counts_reject_attenuation():
    with pytest.raises(ConfigurationError, match="must be >= 1"):
        fold_counts(4, 0.5, fold_rng(0, 0))


def test_fold_selection_is_deterministic():
    a = fold_counts(7, 1.8, fold_rng(3, 2))
    b = fold_counts(7, 1.8, fold_rng(3, 2))
    assert a.tolist() == b.tolist()
    assert a.sum() == round(0.8 * 7 / 2)


def test_fold_ops_inserts_inverse_pairs():
    ops = [Op("Y90", (0,), OpKind.PULSE, duration_cycles=4),
           Op("CZ", (0, 1), OpKind.PULSE, duration_cycles=8),
           Op("MEASURE", (0, 1), OpKind.MEASURE, duration_cycles=300)]
    folded = fold_ops(ops, 3.0, fold_rng(0, 2))
    names = [op.name for op in folded]
    assert names == ["Y90", "mY90", "Y90", "CZ", "CZ", "CZ", "MEASURE"]
    assert all(op.kind is OpKind.PULSE for op in folded[:-1])


ASM = "\n".join([
    "    mov r2, 4",
    "Loop:",
    "    Pulse {q0}, Y90",
    "    Wait 4",
    "    Pulse {q0, q1}, CZ",
    "    Wait 8",
    "    MPG {q0, q1}, 300",
    "    MD {q0, q1}",
    "    bne r1, r2, Loop",
])


def test_fold_asm_triples_foldable_pulses_and_keeps_scaffold():
    folded = fold_asm(ASM, 3.0, fold_rng(0, 2))
    lines = folded.splitlines()
    assert lines.count("    Pulse {q0}, Y90") == 2
    assert lines.count("    Pulse {q0}, mY90") == 1
    assert lines.count("    Pulse {q0, q1}, CZ") == 3
    # The grid-keeping Wait rides along with every folded copy.
    assert lines.count("    Wait 4") == 3
    assert lines.count("    Wait 8") == 3
    # Control flow and measurement pass through untouched, in order.
    assert lines[0] == "    mov r2, 4"
    assert lines[-1] == "    bne r1, r2, Loop"
    assert "    MPG {q0, q1}, 300" in lines and "    MD {q0, q1}" in lines


def test_fold_asm_scale_one_is_identity():
    assert fold_asm(ASM, 1.0, fold_rng(0, 0)) == ASM


def test_fold_asm_is_deterministic():
    assert (fold_asm(ASM, 2.0, fold_rng(5, 1))
            == fold_asm(ASM, 2.0, fold_rng(5, 1)))


def test_fold_asm_ignores_unknown_operations():
    asm = "    Pulse {q0}, CZREC\n    Wait 4"
    assert fold_asm(asm, 3.0, fold_rng(0, 1)) == asm


# -- extrapolators ------------------------------------------------------------


def test_richardson_is_exact_on_polynomials():
    scales = (1.0, 2.0, 3.0)
    poly = lambda lam: 0.3 - 0.2 * lam + 0.05 * lam * lam
    values = [poly(lam) for lam in scales]
    zero = extrapolate_to_zero(scales, values, "richardson")
    assert zero == pytest.approx(poly(0.0), abs=1e-12)


def test_linear_is_exact_on_lines_and_vectorized():
    scales = (1.0, 2.0, 3.0)
    values = np.asarray([[1.0 - 0.1 * lam, 0.5 + 0.2 * lam]
                         for lam in scales])
    zero = extrapolate_to_zero(scales, values, "linear")
    assert np.allclose(zero, [1.0, 0.5])


def test_exponential_is_exact_on_geometric_decay():
    scales = (1.0, 2.0, 3.0)
    a, b, r = 0.25, 0.5, 0.6
    values = [a + b * r ** k for k in range(3)]
    zero = extrapolate_to_zero(scales, values, "exponential")
    # Aitken's delta-squared recovers the geometric limit a... at k -> inf;
    # the zero-noise value is y0 - delta^2/Delta = a + b shifted: check
    # the closed form directly.
    y0, y1, y2 = values
    assert zero == pytest.approx(y0 - (y1 - y0) ** 2 / (y2 - 2 * y1 + y0))


def test_exponential_falls_back_to_linear_without_curvature():
    scales = (1.0, 2.0, 3.0)
    values = [0.9, 0.8, 0.7]  # second difference exactly zero
    assert (extrapolate_to_zero(scales, values, "exponential")
            == pytest.approx(extrapolate_to_zero(scales, values, "linear")))


def test_extrapolator_validation():
    with pytest.raises(ConfigurationError, match="unknown extrapolator"):
        extrapolate_to_zero((1.0, 2.0), [1.0, 2.0], "cubic")
    with pytest.raises(ConfigurationError, match="at least 2"):
        extrapolate_to_zero((1.0,), [1.0], "richardson")
    with pytest.raises(ConfigurationError, match="duplicate"):
        extrapolate_to_zero((1.0, 1.0), [1.0, 2.0], "richardson")
    with pytest.raises(ConfigurationError, match="equally spaced"):
        extrapolate_to_zero((1.0, 2.0, 4.0), [1, 2, 3], "exponential")


def test_noise_amplification_matches_weights():
    scales = (1.0, 2.0)
    weights = extrapolation_weights(scales, "richardson")
    assert np.allclose(weights, [2.0, -1.0])
    assert noise_amplification(scales, "richardson") == pytest.approx(
        np.sqrt(5.0))
    assert noise_amplification((1.0, 2.0, 3.0), "exponential") is None


# -- confusion matrix and inversion ------------------------------------------


def test_identity_response_recovers_exactly_without_ridge():
    q = np.asarray([0.5, 0.1, 0.1, 0.3])
    p = correct_probabilities(np.eye(4), q, ridge=0.0)
    assert np.allclose(p, q, atol=1e-12)


def test_ridge_inversion_stays_close_on_well_conditioned_response():
    response = np.asarray([[0.95, 0.04], [0.05, 0.96]])
    q = response @ np.asarray([0.7, 0.3])
    p = correct_probabilities(response, q)
    assert np.allclose(p, [0.7, 0.3], atol=1e-3)


def test_near_singular_response_stays_finite_and_normalized():
    # Two nearly identical columns: the unregularized inverse explodes,
    # the ridge solution must stay a clean probability vector.
    response = np.asarray([[0.5, 0.5 + 1e-9], [0.5, 0.5 - 1e-9]])
    p = correct_probabilities(response, np.asarray([0.6, 0.4]), ridge=1e-6)
    assert np.all(np.isfinite(p)) and np.all(p >= 0)
    assert p.sum() == pytest.approx(1.0)


def test_confusion_matrix_is_a_deterministic_stochastic_matrix():
    config = pair_config()
    a = confusion_matrix(config, (0, 1), cal_shots=24)
    b = confusion_matrix(config, (0, 1), cal_shots=24)
    assert np.array_equal(a, b)
    assert a.shape == (4, 4)
    assert np.allclose(a.sum(axis=0), 1.0)
    # Crosstalk is small at well-separated IFs: strongly diagonal.
    assert np.all(np.diag(a) > 0.5)


def test_confusion_matrix_degenerate_ifs_still_invertible():
    # Identical IFs: matched filters fully overlap, the response is as
    # ill-conditioned as the simulator can make it — the ridge inversion
    # must still return a finite normalized distribution.
    config = pair_config(readouts=(ReadoutParams(f_if_hz=40e6),
                                   ReadoutParams(f_if_hz=40e6)))
    response = confusion_matrix(config, (0, 1), cal_shots=24)
    assert np.allclose(response.sum(axis=0), 1.0)
    p = correct_counts(response, np.asarray([40, 10, 10, 40]))
    assert np.all(np.isfinite(p)) and p.sum() == pytest.approx(1.0)


def test_confusion_matrix_width_eight():
    config = MachineConfig(qubits=tuple(range(8)),
                           readouts=staggered_readouts(8),
                           calibration_shots=20, trace_enabled=False)
    response = confusion_matrix(config, tuple(range(8)), cal_shots=2)
    assert response.shape == (256, 256)
    assert np.allclose(response.sum(axis=0), 1.0)


def test_confusion_matrix_rejects_bad_widths_and_shots():
    config = pair_config()
    with pytest.raises(CalibrationError, match="width"):
        confusion_matrix(config, tuple(range(9)))
    with pytest.raises(CalibrationError, match="width"):
        confusion_matrix(config, ())
    with pytest.raises(CalibrationError, match="calibration shot"):
        confusion_matrix(config, (0, 1), cal_shots=0)


def test_zero_count_histograms_raise_calibration_error():
    with pytest.raises(CalibrationError, match="zero total counts"):
        correct_counts(np.eye(4), np.zeros(4))
    with pytest.raises(CalibrationError, match="zero total counts"):
        _marginal_one(np.zeros(4), 0)
    with pytest.raises(CalibrationError, match="zero total counts"):
        _correlation(np.zeros(4))


def test_inversion_validates_shapes_and_ridge():
    with pytest.raises(CalibrationError, match="does not match"):
        correct_probabilities(np.eye(3), np.asarray([0.5, 0.5]))
    with pytest.raises(CalibrationError, match="ridge"):
        correct_probabilities(np.eye(2), np.asarray([0.5, 0.5]), ridge=-1.0)


# -- mitigator configuration --------------------------------------------------


def test_zne_mitigator_validates_scales():
    with pytest.raises(ConfigurationError, match="at least 2"):
        ZNEMitigator(scales=(1.0,))
    with pytest.raises(ConfigurationError, match="must be 1.0"):
        ZNEMitigator(scales=(2.0, 3.0))
    with pytest.raises(ConfigurationError, match="strictly increasing"):
        ZNEMitigator(scales=(1.0, 3.0, 2.0))
    with pytest.raises(ConfigurationError, match="unknown extrapolator"):
        ZNEMitigator(extrapolator="cubic")
    with pytest.raises(ConfigurationError, match="equally spaced"):
        ZNEMitigator(scales=(1.0, 2.0, 4.0), extrapolator="exponential")


def test_readout_mitigator_caches_response_per_register():
    mitigator = ReadoutMitigator(pair_config(), cal_shots=16)
    first = mitigator.response_for((0, 1))
    assert mitigator.response_for((0, 1)) is first


def test_mitigated_experiment_validates_params():
    config = pair_config()
    with pytest.raises(ConfigurationError, match="cannot wrap itself"):
        MitigatedExperiment(config=config, targets=((0, 1),),
                            params={"experiment": "mitigated"})
    with pytest.raises(ConfigurationError, match="unknown mitigation"):
        MitigatedExperiment(config=config, targets=((0, 1),),
                            params={"experiment": "bell",
                                    "mitigation": ("zne", "twirl")})
    with pytest.raises(ConfigurationError, match="at least one"):
        MitigatedExperiment(config=config, targets=((0, 1),),
                            params={"experiment": "bell", "mitigation": ()})
    with pytest.raises(ConfigurationError, match="duplicate"):
        MitigatedExperiment(config=config, targets=((0, 1),),
                            params={"experiment": "bell",
                                    "mitigation": ("zne", "zne")})


def test_mitigated_experiment_rejects_uncorrelated_inner():
    exp = MitigatedExperiment(config=MachineConfig(qubits=(2,),
                                                   trace_enabled=False),
                              params={"experiment": "rabi",
                                      "mitigation": ("readout",),
                                      "amplitudes": [0.1, 0.2],
                                      "n_rounds": 2})
    with pytest.raises(ConfigurationError, match="without cal_targets"):
        exp.build_specs()


# -- the mitigated experiment end to end --------------------------------------


def test_scale_one_variants_are_byte_identical_to_unwrapped():
    config = pair_config()
    bell = REGISTRY.get("bell")(config=config, targets=((0, 1),),
                                params={"n_rounds": 4})
    wrapped = MitigatedExperiment(config=config, targets=((0, 1),),
                                  params={"experiment": "bell",
                                          "mitigation": ("zne",),
                                          "scales": (1.0, 2.0, 3.0),
                                          "n_rounds": 4})
    plain = bell.build_specs()
    expanded = wrapped.build_specs()
    assert len(expanded) == 3 * len(plain)
    for i, spec in enumerate(plain):
        variant = expanded[3 * i]
        assert variant.asm == spec.asm
        assert variant.run_seed == spec.run_seed
        assert variant.params["zne_scale"] == 1.0
        folded = expanded[3 * i + 1]
        assert folded.asm != spec.asm
        assert folded.run_seed != spec.run_seed
        assert "zne x2" in folded.label


def test_folded_variants_share_text_across_repeats():
    wrapped = MitigatedExperiment(config=pair_config(), targets=((0, 1),),
                                  params={"experiment": "ghz",
                                          "mitigation": ("zne",),
                                          "scales": (1.0, 2.0),
                                          "n_rounds": 4, "repeats": 2})
    specs = wrapped.build_specs()
    # Fold selection keys on the config seed, not the run seed: the two
    # repeats' folded variants carry identical program text (one compile
    # cache entry) but distinct derived run seeds.
    assert specs[1].asm == specs[3].asm
    assert specs[1].run_seed != specs[3].run_seed


def test_mitigated_bell_runs_and_analyzes():
    # Closely spaced IFs leave visible readout crosstalk, so the parity
    # correlators sit strictly inside (-1, 1) and carry finite error bars.
    config = pair_config(seed=7, readouts=(ReadoutParams(f_if_hz=40e6),
                                           ReadoutParams(f_if_hz=42e6)))
    with Session(config) as session:
        future = session.submit_experiment(
            "mitigated", targets=((0, 1),), experiment="bell",
            mitigation=("zne", "readout"), scales=(1.0, 2.0),
            n_rounds=32, cal_shots=16)
        streamed = list(future.stream(fit=True))
        result = future.result()
    assert len(streamed) == 2 * 3  # two scales, three bases
    assert set(result.correlations) == {"ZZ", "XX", "YY"}
    assert result.fidelity is not None
    assert -1.0 <= result.fidelity <= 1.0
    # The final incremental estimate agrees with the one-shot analysis.
    estimate = future.estimate()
    assert estimate.per_target[(0, 1)]["fidelity"] == pytest.approx(
        result.fidelity)
    # Error bars: scale-1 binomial stderr amplified by the ZNE weights.
    stderr = estimate.stderr[(0, 1)]
    assert stderr is not None and stderr["fidelity"] > 0


def test_mitigated_analysis_requires_whole_groups():
    exp = MitigatedExperiment(config=pair_config(), targets=((0, 1),),
                              params={"experiment": "bell",
                                      "mitigation": ("zne",),
                                      "scales": (1.0, 2.0),
                                      "n_rounds": 4})
    with pytest.raises(ConfigurationError, match="whole"):
        exp.analyze_target([object()], (0, 1))


def test_mitigated_estimate_skips_incomplete_groups():
    config = pair_config(seed=3)
    exp = MitigatedExperiment(config=config, targets=((0, 1),),
                              params={"experiment": "bell",
                                      "mitigation": ("zne",),
                                      "scales": (1.0, 2.0),
                                      "n_rounds": 4, "bases": ("ZZ",)})
    with Session(config) as session:
        future = session.submit(exp)
        results = [job for job, _ in future.stream(fit=False)]
    # Only the scale-1 variant of the single group: no estimate yet.
    assert exp.estimate_target([(0, results[0])], (0, 1)) is None
    est = exp.estimate_target(list(enumerate(results)), (0, 1))
    assert est is not None and "correlations" in est


def test_mitigation_marks_params_and_metrics():
    with Session(pair_config(seed=5)) as session:
        future = session.submit_experiment(
            "mitigated", targets=((0, 1),), experiment="bell",
            mitigation="zne,readout", scales=(1.0, 2.0),
            n_rounds=4, bases=("ZZ",), cal_shots=8)
        future.result()
        jobs = future.sweep.jobs
        stats = session.stats()
    assert all(job.params["mitigation"] == "zne,readout" for job in jobs)
    assert {job.params["zne_scale"] for job in jobs} == {1.0, 2.0}
    counters = stats["metrics"]["service"]["counters"]
    assert counters["service.mitigated_jobs"] == len(jobs)
    assert counters["service.zne_jobs"] == len(jobs)


def test_sweep_artifact_round_trips_estimate(tmp_path):
    path = str(tmp_path / "sweep.json")
    with Session(pair_config(seed=2)) as session:
        future = session.submit_experiment(
            "mitigated", targets=((0, 1),), experiment="bell",
            mitigation=("zne", "readout"), scales=(1.0, 2.0),
            n_rounds=4, cal_shots=8)
        result = future.result()
        future.sweep.save(path)
    loaded = SweepResult.load(path)
    assert loaded.estimate is not None
    (per_target,) = loaded.estimate["per_target"]
    assert per_target["target"] == [0, 1]
    assert per_target["fit"]["fidelity"] == pytest.approx(result.fidelity)
    # Round-trip only: this tiny clean sweep's binomial stderr is 0.
    assert per_target["stderr"]["fidelity"] >= 0


def test_cli_mitigation_flag_wraps_experiment(capsys):
    from repro.cli import main

    code = main(["exp", "bell", "--qubits", "0-1", "--mitigation",
                 "zne,readout", "--param", "n_rounds=4",
                 "--param", "scales=(1.0, 2.0)", "--param", "cal_shots=8",
                 "--param", "bases=('ZZ',)"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[mitigated zne+readout]" in out
