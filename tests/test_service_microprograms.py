"""Microprogram-aware jobs: setup threading, cache keys, replay fallback."""

import numpy as np
import pytest

from repro.core import MachineConfig
from repro.service import (
    ExperimentService,
    JobSpec,
    ReplayCache,
    microprograms_fingerprint,
)
from repro.utils.errors import ReproError

#: Canonical averaging loop whose gate comes from a Q-control-store
#: microprogram (an ``Apply``-style mnemonic, assembled to ``QCall``).
LOOP_ASM = """
    mov r15, 40000
    mov r1, 0
    mov r2, {n}
Loop:
    QNopReg r15
    FLIP q2
    Wait 4
    MPG {{q2}}, 300
    MD {{q2}}
    addi r1, r1, 1
    bne r1, r2, Loop
    halt
"""

X_BODY = "Pulse {q0}, X180\nWait 4"
I_BODY = "Pulse {q0}, I\nWait 4"


def uprog_spec(body=X_BODY, n_rounds=8, seed=None, replay=True):
    return JobSpec(config=MachineConfig(qubits=(2,), trace_enabled=False),
                   asm=LOOP_ASM.format(n=n_rounds), n_rounds=n_rounds,
                   microprograms=(("FLIP", 1, body),), seed=seed,
                   replay=replay)


class TestExecution:
    def test_microprogram_threads_into_machine_setup(self):
        job = ExperimentService().run_job(uprog_spec(X_BODY))
        assert job.normalized[0] == pytest.approx(1.0, abs=0.3)

    def test_body_changes_results_not_just_names(self):
        service = ExperimentService()
        flip = service.run_job(uprog_spec(X_BODY))
        stay = service.run_job(uprog_spec(I_BODY))
        assert flip.normalized[0] > 0.7
        assert stay.normalized[0] < 0.3

    def test_pooled_machine_reuse_is_bit_exact(self):
        service = ExperimentService()
        first = service.run_job(uprog_spec(X_BODY, seed=5))
        pooled = service.run_job(uprog_spec(X_BODY, seed=5))
        assert pooled.machine_reused and pooled.cache_hit
        assert np.array_equal(first.averages, pooled.averages)

    def test_bad_microprogram_body_raises(self):
        spec = uprog_spec("mov r1, 1")  # classical instr in a microprogram
        with pytest.raises(ReproError):
            ExperimentService().run_job(spec)

    def test_pooled_reuse_does_not_leak_microprograms(self):
        # Machine reset must restore the just-constructed (empty)
        # Q-control store, or one job's definitions would silently
        # resolve in the next job's programs on a reused machine.
        service = ExperimentService()
        service.run_job(uprog_spec(X_BODY))
        machine, reused = service.pool.acquire(uprog_spec(X_BODY).config)
        try:
            assert reused
            assert "FLIP" in machine.store  # left over from the last job
            machine.reset()
            assert "FLIP" not in machine.store
        finally:
            service.pool.release(machine)


class TestCacheKeys:
    def test_same_asm_different_body_misses_cache(self):
        service = ExperimentService()
        service.run_job(uprog_spec(X_BODY))
        second = service.run_job(uprog_spec(I_BODY))
        assert not second.cache_hit  # body is part of the fingerprint

    def test_fingerprint_stability_and_sensitivity(self):
        a = microprograms_fingerprint((("FLIP", 1, X_BODY),))
        assert a == microprograms_fingerprint((("FLIP", 1, X_BODY),))
        assert a != microprograms_fingerprint((("FLIP", 1, I_BODY),))
        assert a != microprograms_fingerprint((("FLOP", 1, X_BODY),))
        assert a != microprograms_fingerprint(())

    def test_replay_cache_key_includes_microprograms(self):
        cache = ReplayCache()
        assert cache.key_for(uprog_spec(X_BODY)) != \
            cache.key_for(uprog_spec(I_BODY))


class TestReplayIneligibility:
    def test_microprogram_job_falls_back_to_full_simulation(self):
        # The ROADMAP item's safety property: QCall programs never take
        # the round-replay fast path, however many rounds they declare.
        job = ExperimentService().run_job(uprog_spec(X_BODY, n_rounds=8))
        assert job.replayed_rounds == 0
        assert not job.replay_plan_hit

    def test_fallback_is_bit_identical_to_replay_disabled(self):
        with_replay = ExperimentService().run_job(
            uprog_spec(X_BODY, n_rounds=8, seed=3, replay=True))
        without = ExperimentService().run_job(
            uprog_spec(X_BODY, n_rounds=8, seed=3, replay=False))
        assert np.array_equal(with_replay.averages, without.averages)

    def test_equivalent_inline_program_does_replay(self):
        # Same physics written without the microprogram call replays,
        # pinning the fallback to the QCall itself.
        inline = JobSpec(
            config=MachineConfig(qubits=(2,), trace_enabled=False),
            asm=LOOP_ASM.format(n=8).replace("FLIP q2",
                                             "Pulse {q2}, X180"),
            n_rounds=8)
        job = ExperimentService().run_job(inline)
        assert job.replayed_rounds > 0
