"""Coverage for remaining corners: CZ phase error, calibration edges,
data-collection details, and operation-table semantics."""

import numpy as np
import pytest

from repro.core import MachineConfig, QuMA
from repro.isa.operations import OperationTable
from repro.pulse import PulseCalibration, Waveform, build_single_qubit_lut, square
from repro.qubit import QuantumDevice, TransmonParams
from repro.readout import DataCollectionUnit, ReadoutParams, calibrate_readout
from repro.utils.errors import CalibrationError, ConfigurationError

LUT = build_single_qubit_lut()


def test_cz_entangles_superposed_qubits():
    flux = Waveform("CZ", square(40, 0.5), meta={"kind": "cz"})
    dev = QuantumDevice([TransmonParams(), TransmonParams()],
                        cz_phase_error_rad=0.0)
    dev.play_waveform((0,), LUT.lookup(5), 0)  # Y90 both
    dev.play_waveform((1,), LUT.lookup(5), 0)
    dev.play_waveform((0, 1), flux, 20)
    # Entanglement witness: the reduced state of one qubit is mixed.
    r0 = dev.state.reduced(0)
    assert np.real(np.trace(r0 @ r0)) < 0.6


def test_cz_phase_error_changes_unitary():
    flux = Waveform("CZ", square(40, 0.5), meta={"kind": "cz"})
    ideal = QuantumDevice([TransmonParams(), TransmonParams()],
                          cz_phase_error_rad=0.0)
    off = QuantumDevice([TransmonParams(), TransmonParams()],
                        cz_phase_error_rad=0.3)
    for dev in (ideal, off):
        dev.play_waveform((0,), LUT.lookup(2), 0)
        dev.play_waveform((1,), LUT.lookup(2), 0)
        dev.play_waveform((0, 1), flux, 20)
    assert not np.allclose(ideal.state.data, off.state.data)


def test_calibration_needs_shots():
    with pytest.raises(CalibrationError):
        calibrate_readout(ReadoutParams(), 1500, n_shots=1)


def test_calibration_detects_degenerate_readout():
    degenerate = ReadoutParams(amp_ground=0.3, amp_excited=0.3,
                               phase_ground=0.5, phase_excited=0.5)
    with pytest.raises((CalibrationError, ValueError)):
        calibrate_readout(degenerate, 1500, n_shots=10)


def test_dcu_raw_and_clear():
    dcu = DataCollectionUnit(2)
    for v in (1.0, 2.0, 3.0, 4.0):
        dcu.record(v)
    assert np.allclose(dcu.raw(), [1, 2, 3, 4])
    assert len(dcu) == 4
    dcu.clear()
    assert len(dcu) == 0


def test_operation_table_conflicts():
    table = OperationTable()
    x_id = table.id_of("X180")
    # Same name, same id: fine (idempotent).
    assert table.define("X180", x_id) == x_id
    with pytest.raises(ConfigurationError):
        table.define("X180", x_id + 1)
    with pytest.raises(ConfigurationError):
        table.define("fresh_name", x_id)
    with pytest.raises(ConfigurationError):
        table.define("too_big", 300)


def test_operation_table_copy_isolated():
    a = OperationTable()
    b = a.copy()
    b.define("EXTRA")
    assert "EXTRA" in b
    assert "EXTRA" not in a


def test_operation_table_names_in_id_order():
    table = OperationTable()
    names = table.names()
    assert names[0] == "I"
    assert names[table.id_of("CZ")] == "CZ"


def test_machine_rejects_bad_binary_length():
    machine = QuMA(MachineConfig(qubits=(2,)))
    with pytest.raises(ValueError):
        machine.load(b"\x01\x02\x03")  # not a multiple of 4


def test_pulse_calibration_envelope_area_positive():
    cal = PulseCalibration()
    assert cal.envelope_area() > 0
    # Amplitude scales inversely with kappa.
    a1 = PulseCalibration(kappa=0.4).amplitude_for(np.pi)
    a2 = PulseCalibration(kappa=0.8).amplitude_for(np.pi)
    assert a1 == pytest.approx(2 * a2)


def test_transmon_param_validation():
    with pytest.raises(ConfigurationError):
        TransmonParams(t1_ns=-1.0)
    with pytest.raises(ConfigurationError):
        TransmonParams(t1_ns=100.0, t2_ns=500.0)
    with pytest.raises(ConfigurationError):
        TransmonParams(kappa=0.0)
