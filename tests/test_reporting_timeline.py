"""Tests for the waveform-lane renderer."""

from repro.reporting import render_pulse_lanes
from repro.sim import TraceRecorder


def make_trace():
    tr = TraceRecorder()
    tr.emit(100, "ctpg2", "pulse_start", name="X90", duration_ns=20)
    tr.emit(120, "ctpg2", "pulse_start", name="X90", duration_ns=20)
    tr.emit(140, "readout", "msmt_pulse_start", qubit=2, duration_ns=1500)
    return tr


def test_lanes_present_with_annotations():
    text = render_pulse_lanes(make_trace(), 0, 2000, width=40)
    assert "drive" in text
    assert "readout" in text
    assert "X90 @ 100 ns" in text
    assert "measure q2 @ 140 ns" in text


def test_fills_appear_in_lanes():
    text = render_pulse_lanes(make_trace(), 0, 2000, width=40)
    drive_line = next(ln for ln in text.splitlines() if ln.strip().startswith("drive"))
    readout_line = next(ln for ln in text.splitlines()
                        if ln.strip().startswith("readout"))
    assert "█" in drive_line
    assert "▒" in readout_line
    # Measurement occupies most of the window; gates a small slice.
    assert readout_line.count("▒") > drive_line.count("█")


def test_events_outside_window_excluded():
    text = render_pulse_lanes(make_trace(), 0, 130, width=40)
    assert "measure" not in text
    assert "X90 @ 100 ns" in text


def test_minimum_one_cell_per_pulse():
    tr = TraceRecorder()
    tr.emit(10, "ctpg0", "pulse_start", name="I", duration_ns=20)
    text = render_pulse_lanes(tr, 0, 100000, width=30)
    drive_line = next(ln for ln in text.splitlines() if "drive" in ln)
    assert "█" in drive_line
