"""Machine-level tests of composite micro-operations (Seq_Z, §5.3.2)."""

import pytest

from repro.core import MachineConfig, QuMA


def machine_with_z() -> QuMA:
    machine = QuMA(MachineConfig(qubits=(2,)))
    z_id = machine.op_table.define("Z180")
    machine.uop_units["uop2"].define_sequence(
        z_id, [(0, machine.op_table.id_of("Y180")),
               (4, machine.op_table.id_of("X180"))])
    return machine


def test_composite_z_emits_two_codewords():
    machine = machine_with_z()
    machine.load("Wait 4\nPulse {q2}, Z180\nWait 8\nhalt")
    machine.run()
    played = [r.detail["name"] for r in machine.trace.filter(kind="pulse_start")]
    assert played == ["Y180", "X180"]
    times = [r.time for r in machine.trace.filter(kind="pulse_start")]
    assert times[1] - times[0] == 20  # 4 cycles apart, back to back


def test_composite_z_flips_ramsey_phase():
    """y90 - Z - my90 ends in |1>; without Z it returns to |0>."""
    def run(with_z: bool) -> int:
        machine = machine_with_z()
        z_block = "Pulse {q2}, Z180\nWait 8" if with_z else "Wait 8"
        machine.load(f"""
            Wait 4
            Pulse {{q2}}, Y90
            Wait 4
            {z_block}
            Pulse {{q2}}, mY90
            Wait 4
            MPG {{q2}}, 300
            MD {{q2}}, r7
            halt
        """)
        result = machine.run()
        assert result.completed
        return machine.registers.read(7)

    assert run(True) == 1
    assert run(False) == 0


def test_composite_z_population_neutral_on_basis_states():
    """Z preserves |0> and |1> populations (up to decoherence)."""
    machine = machine_with_z()
    machine.load("""
        Wait 4
        Pulse {q2}, X180
        Wait 4
        Pulse {q2}, Z180
        Wait 8
        MPG {q2}, 300
        MD {q2}, r7
        halt
    """)
    machine.run()
    assert machine.registers.read(7) == 1


def test_composite_needs_room_for_both_pulses():
    """A composite followed too closely overlaps on the device."""
    from repro.utils.errors import ConfigurationError

    machine = machine_with_z()
    machine.load("""
        Wait 4
        Pulse {q2}, Z180
        Wait 4
        Pulse {q2}, X90
        halt
    """)
    with pytest.raises(ConfigurationError):
        machine.run()
