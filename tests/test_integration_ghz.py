"""Three-qubit GHZ state: compiler + chained CNOT microcode + multiplexed
measurement, stressing the multi-qubit paths end to end."""

import pytest

from repro.compiler import CompilerOptions, QuantumProgram, compile_program
from repro.core import MachineConfig, QuMA
from repro.readout import ReadoutParams


def ghz_machine(seed: int) -> QuMA:
    machine = QuMA(MachineConfig(
        qubits=(0, 1, 2),
        flux_pairs=((0, 1), (1, 2)),
        readouts=(ReadoutParams(f_if_hz=40e6),
                  ReadoutParams(f_if_hz=50e6, phase_ground=0.8),
                  ReadoutParams(f_if_hz=62e6, phase_ground=0.2)),
        seed=seed, trace_enabled=False))
    program = QuantumProgram("ghz", qubits=(0, 1, 2))
    k = program.new_kernel("make")
    k.prepz(0).prepz(1).prepz(2)
    k.y90(0)
    k.cnot(0, 1)
    k.cnot(1, 2)
    k.measure(0, rd=5)
    k.measure(1, rd=6)
    k.measure(2, rd=7)
    compiled = compile_program(program, CompilerOptions(n_rounds=1))
    machine.load(compiled.asm)
    return machine


def test_ghz_outcomes_fully_correlated():
    outcomes = []
    for seed in range(12):
        machine = ghz_machine(seed)
        result = machine.run()
        assert result.completed
        assert result.timing_violations == []
        bits = tuple(machine.registers.read(r) for r in (5, 6, 7))
        outcomes.append(bits)
    # GHZ: all three agree in every shot (up to small error rates).
    agreeing = sum(1 for b in outcomes if len(set(b)) == 1)
    assert agreeing >= 11
    # Both branches appear across seeds.
    assert any(b == (0, 0, 0) for b in outcomes)
    assert any(b == (1, 1, 1) for b in outcomes)


def test_ghz_state_before_measurement():
    """Gate sequence only (no measurement): inspect the produced state."""
    machine2 = QuMA(MachineConfig(qubits=(0, 1, 2),
                                  flux_pairs=((0, 1), (1, 2))))
    machine2.define_microprogram("CNOT", 2, """
        Pulse {q0}, mY90
        Wait 4
        Pulse {q0, q1}, CZ
        Wait 8
        Pulse {q0}, Y90
        Wait 4
    """)
    machine2.load("""
        Wait 4
        Pulse {q0}, Y90
        Wait 4
        CNOT q1, q0
        CNOT q2, q1
        halt
    """)
    result = machine2.run()
    assert result.completed
    state = machine2.device.state
    # Populations concentrate on |000> and |111>.
    p000 = float(state.data[0, 0].real)
    p111 = float(state.data[7, 7].real)
    assert p000 == pytest.approx(0.5, abs=0.03)
    assert p111 == pytest.approx(0.5, abs=0.03)
    # Coherence between the two branches survives (GHZ, not a mixture).
    assert abs(state.data[0, 7]) > 0.4
