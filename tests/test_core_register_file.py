"""Tests for the register file and its pending-bit scoreboard."""

from repro.core import RegisterFile


def test_read_write():
    rf = RegisterFile()
    rf.write(5, 42)
    assert rf.read(5) == 42
    assert rf.read(0) == 0


def test_wrap32():
    rf = RegisterFile()
    rf.write(1, (1 << 31))
    assert rf.read(1) == -(1 << 31)
    rf.write(1, (1 << 32) + 7)
    assert rf.read(1) == 7
    rf.write(1, -1)
    assert rf.read(1) == -1


def test_pending_lifecycle():
    rf = RegisterFile()
    assert not rf.is_pending(7)
    rf.mark_pending(7)
    assert rf.is_pending(7)
    rf.writeback(7, 1)
    assert not rf.is_pending(7)
    assert rf.read(7) == 1


def test_multiple_outstanding_writebacks():
    rf = RegisterFile()
    rf.mark_pending(7)
    rf.mark_pending(7)
    rf.writeback(7, 0)
    assert rf.is_pending(7)  # one still in flight
    rf.writeback(7, 1)
    assert not rf.is_pending(7)


def test_wait_for_fires_immediately_when_ready():
    rf = RegisterFile()
    fired = []
    rf.wait_for((1, 2), lambda: fired.append(True))
    assert fired == [True]


def test_wait_for_defers_until_writeback():
    rf = RegisterFile()
    fired = []
    rf.mark_pending(3)
    rf.wait_for((3,), lambda: fired.append(True))
    assert fired == []
    rf.writeback(3, 9)
    assert fired == [True]
    assert rf.read(3) == 9


def test_wait_for_requires_all_sources():
    rf = RegisterFile()
    fired = []
    rf.mark_pending(1)
    rf.mark_pending(2)
    rf.wait_for((1, 2), lambda: fired.append(True))
    rf.writeback(1, 0)
    assert fired == []
    rf.writeback(2, 0)
    assert fired == [True]


def test_any_pending():
    rf = RegisterFile()
    rf.mark_pending(4)
    assert rf.any_pending((3, 4))
    assert not rf.any_pending((3, 5))


def test_plain_write_does_not_clear_pending():
    rf = RegisterFile()
    rf.mark_pending(6)
    rf.write(6, 5)
    assert rf.is_pending(6)
