"""Tests for Rabi calibration and randomized benchmarking."""

import numpy as np
import pytest

from repro import Session
from repro.core import MachineConfig
from repro.pulse import PulseCalibration
from repro.qubit import TransmonParams


def run_rabi(config, **params):
    """The experiment through the Session facade (legacy-call shape)."""
    with Session(config) as session:
        return session.run("rabi", **params)


def run_rb(config, **params):
    """The experiment through the Session facade (legacy-call shape)."""
    with Session(config) as session:
        return session.run("rb", **params)


def fast_config():
    # Strong drive: the pi amplitude sits near 0.4 of DAC full scale so
    # the default sweep covers a complete Rabi oscillation.
    return MachineConfig(qubits=(2,), trace_enabled=False,
                         calibration=PulseCalibration(kappa=0.7))


@pytest.mark.slow
def test_rabi_finds_pi_amplitude():
    result = run_rabi(fast_config(), n_rounds=24)
    assert result.pi_amplitude == pytest.approx(result.expected_pi_amplitude,
                                                rel=0.05)
    # Full oscillation: population reaches near 1 and returns near 0.
    assert np.max(result.population) > 0.9
    assert result.population[0] < 0.1


@pytest.mark.slow
def test_rabi_custom_amplitudes():
    expected = fast_config().calibration.amplitude_for(np.pi)
    amps = np.linspace(0, 2 * expected, 9)
    result = run_rabi(fast_config(), amplitudes=amps, n_rounds=24)
    assert len(result.population) == 9


@pytest.mark.slow
def test_rb_decay_and_error_rate():
    # A deliberately lossy qubit gives a clear decay signal at small N.
    lossy = TransmonParams(t1_ns=4000.0, t2_ns=3000.0)
    config = MachineConfig(qubits=(2,), transmons=(lossy,),
                           trace_enabled=False)
    result = run_rb(config, lengths=[1, 8, 24, 56], sequences_per_length=2,
                    n_rounds=24, seed=4)
    # Survival decays with sequence length.
    assert result.survival[0] > result.survival[-1] + 0.05
    # Decoherence-limited error per Clifford: ~2 pulses x ~20 ns over
    # T2 = 3 us gives r on the 1e-3..1e-1 scale.
    assert 0.0 < result.error_per_clifford < 0.15
    assert result.pulses_per_clifford > 1.0


@pytest.mark.slow
def test_rb_worse_with_shorter_coherence():
    good_qubit = TransmonParams(t1_ns=8000.0, t2_ns=6000.0)
    good = run_rb(MachineConfig(qubits=(2,), transmons=(good_qubit,),
                                trace_enabled=False),
                  lengths=[1, 12, 32], sequences_per_length=2,
                  n_rounds=24, seed=4)
    bad_qubit = TransmonParams(t1_ns=1500.0, t2_ns=1200.0)
    bad = run_rb(MachineConfig(qubits=(2,), transmons=(bad_qubit,),
                               trace_enabled=False),
                 lengths=[1, 12, 32], sequences_per_length=2,
                 n_rounds=24, seed=4)
    # Faster decay is directly visible in the long-sequence survival, and
    # the fitted error rate orders the two qubits correctly.
    assert bad.survival[-1] < good.survival[-1] - 0.1
    assert bad.error_per_clifford > good.error_per_clifford
