"""Tests for T1 / Ramsey / Echo through the full stack (Section 8)."""

import pytest

from repro import Session
from repro.core import MachineConfig
from repro.qubit import TransmonParams

# Short coherence times keep sweep delays (and wall clock) small.
FAST_QUBIT = TransmonParams(t1_ns=6000.0, t2_ns=4000.0)


def _run(kind, config, **params):
    with Session(config) as session:
        return session.run(kind, **params)


def run_t1(config, **params):
    return _run("t1", config, **params)


def run_ramsey(config, **params):
    return _run("ramsey", config, **params)


def run_echo(config, **params):
    return _run("echo", config, **params)


def fast_config(**kwargs):
    return MachineConfig(qubits=(2,), transmons=(FAST_QUBIT,),
                         trace_enabled=False, **kwargs)


def test_ramsey_does_not_mutate_caller_config():
    config = fast_config()
    run_ramsey(config, delays_cycles=[4, 8, 12, 16, 20, 24], n_rounds=2)
    assert config.drive_detuning_hz == 0.0


@pytest.mark.slow
def test_t1_fit_recovers_configured_value():
    result = run_t1(fast_config(), n_rounds=48)
    assert result.kind == "t1"
    assert result.fitted_tau_ns == pytest.approx(FAST_QUBIT.t1_ns, rel=0.25)
    # Population starts near 1 and decays.
    assert result.population[0] > 0.8
    assert result.population[-1] < result.population[0]


@pytest.mark.slow
def test_ramsey_fringes_at_artificial_detuning():
    detuning = 0.4e6
    result = run_ramsey(fast_config(), artificial_detuning_hz=detuning,
                        n_rounds=48)
    # Fringe frequency in 1/ns equals the artificial detuning in GHz.
    assert result.fit.frequency == pytest.approx(detuning * 1e-9, rel=0.15)


@pytest.mark.slow
def test_ramsey_t2_star_near_configured_t2():
    result = run_ramsey(fast_config(), artificial_detuning_hz=1.0e6,
                        n_rounds=48)
    assert result.fitted_tau_ns == pytest.approx(FAST_QUBIT.t2_ns, rel=0.4)


@pytest.mark.slow
def test_echo_decay_near_configured_t2():
    """Markovian substrate: echo recovers ~T2 (no low-frequency noise to
    refocus); see DESIGN.md model notes."""
    result = run_echo(fast_config(), n_rounds=48)
    assert result.fitted_tau_ns == pytest.approx(FAST_QUBIT.t2_ns, rel=0.4)


@pytest.mark.slow
def test_echo_starts_low_ends_half():
    result = run_echo(fast_config(), n_rounds=48)
    assert result.population[0] < 0.25
    assert abs(result.population[-1] - 0.5) < 0.2
