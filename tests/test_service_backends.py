"""Executor backends: parity, futures, streaming, and the disk-spill cache.

The determinism contract under test: ``run_batch`` on every backend
returns bit-identical ``SweepResult.averages()`` for the same specs, and
``iter_completed`` yields every submitted job exactly once whatever order
they finish in.

Set ``REPRO_SERVICE_BACKEND=serial|process|async`` to pin the
parametrized backend (the CI matrix runs one backend per job); unset, the
tests cover all three.
"""

import os

import numpy as np
import pytest

from repro.compiler import CompilerOptions, QuantumProgram
from repro.core import MachineConfig
from repro.experiments.rabi import rabi_job
from repro.experiments.runner import run_spec_sweep
from repro.service import (
    CompileCache,
    ExperimentService,
    JobSpec,
    SweepResult,
    create_backend,
)
from repro.utils.errors import ConfigurationError, ReproError

ALL_BACKENDS = ("serial", "process", "async")
_PINNED = os.environ.get("REPRO_SERVICE_BACKEND")
BACKENDS_UNDER_TEST = (_PINNED,) if _PINNED else ALL_BACKENDS


@pytest.fixture(params=BACKENDS_UNDER_TEST)
def backend(request):
    return request.param


def flip_program():
    p = QuantumProgram("flip", qubits=(2,))
    p.new_kernel("k").prepz(2).x(2).measure(2)
    return p


def flip_spec(seed=None, n_rounds=2, label=""):
    return JobSpec(config=MachineConfig(qubits=(2,), trace_enabled=False),
                   program=flip_program(),
                   compiler_options=CompilerOptions(n_rounds=n_rounds),
                   seed=seed, label=label)


def mixed_specs():
    """Seeds, an upload sweep point, and a replay-eligible job."""
    config = MachineConfig(qubits=(2,), trace_enabled=False)
    return [
        flip_spec(seed=1, label="flip1"),
        flip_spec(seed=2, label="flip2"),
        rabi_job(config, 2, 0.3, n_rounds=4),
        flip_spec(seed=3, n_rounds=8, label="flip3"),
    ]


class TestBackendRegistry:
    def test_service_accepts_all_backends(self, backend):
        with ExperimentService(backend=backend) as svc:
            assert svc.backend == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentService(backend="threads")
        with pytest.raises(ConfigurationError):
            create_backend("threads")


class TestParity:
    # One oracle, computed once, compared against every backend.
    _oracle = None

    @classmethod
    def oracle(cls):
        if cls._oracle is None:
            cls._oracle = ExperimentService().run_batch(mixed_specs())
        return cls._oracle

    def test_run_batch_bit_identical_across_backends(self, backend):
        serial = self.oracle()
        with ExperimentService(backend=backend, workers=2) as svc:
            sweep = svc.run_batch(mixed_specs())
        assert sweep.backend == backend
        assert np.array_equal(serial.averages(), sweep.averages())
        for s, p in zip(serial, sweep):
            assert s.seed == p.seed
            assert s.params == p.params
            assert s.run.duration_ns == p.run.duration_ns

    def test_submit_then_gather_matches_run_batch(self, backend):
        serial = self.oracle()
        with ExperimentService(backend=backend, workers=2) as svc:
            futures = [svc.submit(spec) for spec in mixed_specs()]
            svc.drain()
            assert all(f.done() for f in futures)
            results = [f.result() for f in futures]
        assert np.array_equal(serial.averages(),
                              np.stack([r.averages for r in results]))


class TestFutures:
    def test_submit_returns_future_with_index(self, backend):
        with ExperimentService(backend=backend, workers=2) as svc:
            f1 = svc.submit(flip_spec(seed=1))
            f2 = svc.submit(flip_spec(seed=2))
            assert (f1.index, f2.index) == (0, 1)
            assert f1.result().seed == 1
            assert f2.result().seed == 2
            list(svc.iter_completed())  # drain the stream bookkeeping

    def test_future_reraises_job_error(self, backend):
        bad = QuantumProgram("tight", qubits=(2,))
        k = bad.new_kernel("k")
        k.x(2)
        k.x(2)
        k.measure(2)
        spec = JobSpec(
            config=MachineConfig(qubits=(2,), classical_issue_ns=500,
                                 trace_enabled=False),
            program=bad)
        with ExperimentService(backend=backend, workers=2) as svc:
            future = svc.submit(spec)
            with pytest.raises(ReproError):
                future.result()
            assert future.exception() is not None
            with pytest.raises(ReproError):
                list(svc.iter_completed())

    def test_future_resolves_exactly_once(self):
        from repro.service import JobFuture

        future = JobFuture(flip_spec())
        future.set_result("x")
        with pytest.raises(RuntimeError):
            future.set_result("y")

    def test_done_callback_fires_after_and_immediately(self):
        from repro.service import JobFuture

        seen = []
        future = JobFuture(flip_spec())
        future.add_done_callback(lambda f: seen.append("pre"))
        future.set_result("x")
        future.add_done_callback(lambda f: seen.append("post"))
        assert seen == ["pre", "post"]


class TestIterCompleted:
    def test_streams_every_submission_exactly_once(self, backend):
        specs = [flip_spec(seed=s, label=f"s{s}") for s in range(5)]
        with ExperimentService(backend=backend, workers=2) as svc:
            for spec in specs:
                svc.submit(spec)
            got = list(svc.iter_completed())
        assert sorted(r.label for r in got) == sorted(s.label for s in specs)
        # Stream is drained: a second iteration yields nothing.
        assert list(svc.iter_completed()) == []

    def test_results_can_finish_out_of_submission_order(self, backend):
        if backend == "serial":
            pytest.skip("serial submission resolves eagerly in order")
        # One heavy job submitted first, then light ones: with two
        # workers the light jobs overtake it in the completion stream.
        heavy = flip_spec(seed=0, n_rounds=60, label="heavy")
        heavy.replay = False
        lights = [flip_spec(seed=s, label=f"light{s}") for s in (1, 2, 3, 4)]
        with ExperimentService(backend=backend, workers=2) as svc:
            svc.submit(heavy)
            for spec in lights:
                svc.submit(spec)
            order = [r.label for r in svc.iter_completed()]
        assert sorted(order) == sorted(["heavy"] + [s.label for s in lights])
        assert order[0] != "heavy"

    def test_iter_completed_timeout(self):
        with ExperimentService() as svc:
            svc.submit(flip_spec())
            assert len(list(svc.iter_completed(timeout=10))) == 1


class TestScopedDraining:
    """iter_completed(futures): one sweep's stream on a shared service."""

    def test_group_stream_yields_only_its_own_jobs(self, backend):
        with ExperimentService(backend=backend, workers=2) as svc:
            group_a = [svc.submit(flip_spec(seed=s, label=f"a{s}"))
                       for s in range(3)]
            group_b = [svc.submit(flip_spec(seed=s, label=f"b{s}"))
                       for s in range(3, 6)]
            got_a = [r.label for r in svc.iter_completed(group_a)]
            got_b = [r.label for r in svc.iter_completed(group_b)]
        assert sorted(got_a) == ["a0", "a1", "a2"]
        assert sorted(got_b) == ["b3", "b4", "b5"]

    def test_scoped_then_global_yields_each_job_once(self, backend):
        with ExperimentService(backend=backend, workers=2) as svc:
            scoped = [svc.submit(flip_spec(seed=s, label=f"s{s}"))
                      for s in range(2)]
            svc.submit(flip_spec(seed=7, label="loose"))
            got_scoped = [r.label for r in svc.iter_completed(scoped)]
            got_global = [r.label for r in svc.iter_completed()]
        assert sorted(got_scoped) == ["s0", "s1"]
        # The service-wide stream skips scoped-collected jobs.
        assert got_global == ["loose"]
        assert list(svc.iter_completed()) == []

    def test_iter_futures_returns_futures_in_completion_order(self, backend):
        with ExperimentService(backend=backend, workers=2) as svc:
            futures = [svc.submit(flip_spec(seed=s)) for s in range(4)]
            seen = list(svc.iter_futures(futures))
        assert sorted(f.result().seed for f in seen) == [0, 1, 2, 3]
        assert all(f.done() for f in seen)

    def test_concurrent_sweeps_do_not_steal_results(self, backend):
        """The documented run_spec_sweep footgun, fixed: two interleaved
        sweeps on one service each see exactly their own stream."""
        specs_a = [flip_spec(seed=s, label=f"a{s}") for s in range(3)]
        specs_b = [flip_spec(seed=s, label=f"b{s}") for s in range(3)]
        seen_a, seen_b = [], []
        with ExperimentService(backend=backend, workers=2) as svc:
            futures_a = [svc.submit(spec) for spec in specs_a]
            sweep_b = run_spec_sweep(svc, specs_b, on_result=seen_b.append)
            for result in svc.iter_completed(futures_a):
                seen_a.append(result)
        assert sorted(r.label for r in seen_a) == ["a0", "a1", "a2"]
        assert sorted(r.label for r in seen_b) == ["b0", "b1", "b2"]
        assert [r.label for r in sweep_b] == ["b0", "b1", "b2"]

    def test_global_then_scoped_yields_each_job_once(self, backend):
        """A job the service-wide stream already yielded is skipped by a
        later scoped drain (exactly-once across all streams)."""
        with ExperimentService(backend=backend, workers=2) as svc:
            future = svc.submit(flip_spec(seed=1, label="x"))
            got_global = [r.label for r in svc.iter_completed()]
            got_scoped = [r.label for r in svc.iter_completed([future])]
        assert got_global == ["x"]
        assert got_scoped == []

    def test_scoped_timeout(self):
        with ExperimentService() as svc:
            futures = [svc.submit(flip_spec())]
            assert len(list(svc.iter_completed(futures, timeout=10))) == 1


class TestRunSpecSweep:
    def test_matches_run_batch_and_streams_progress(self, backend):
        specs = mixed_specs()
        serial = ExperimentService().run_batch(specs)
        seen = []
        with ExperimentService(backend=backend, workers=2) as svc:
            sweep = run_spec_sweep(svc, specs, on_result=seen.append)
        assert np.array_equal(serial.averages(), sweep.averages())
        assert sorted(r.seed for r in seen) == sorted(s.run_seed
                                                      for s in specs)


class TestDiskSpillCache:
    def test_cold_cache_starts_warm_from_disk(self, tmp_path):
        spec = flip_spec(seed=4)
        warm = CompileCache(persist_dir=tmp_path)
        first = warm.resolve(spec)
        assert not first.cache_hit
        assert warm.disk_writes >= 2  # codegen json + assembly binary

        cold = CompileCache(persist_dir=tmp_path)  # a new process's cache
        resolved = cold.resolve(spec)
        assert resolved.cache_hit
        assert cold.disk_hits >= 2
        assert cold.assembly_misses == 0 and cold.codegen_misses == 0

    def test_disk_loaded_program_executes_identically(self, tmp_path):
        spec = flip_spec(seed=4)
        fresh = ExperimentService().run_job(spec)
        svc = ExperimentService(cache=CompileCache(persist_dir=tmp_path))
        svc.run_job(spec)
        cold = ExperimentService(cache=CompileCache(persist_dir=tmp_path))
        from_disk = cold.run_job(spec)
        assert from_disk.cache_hit
        assert np.array_equal(fresh.averages, from_disk.averages)

    def test_disk_cache_respects_microprogram_bodies(self, tmp_path):
        asm = """
            mov r15, 40000
            QNopReg r15
            FLIP q2
            Wait 4
            MPG {q2}, 300
            MD {q2}
            halt
        """
        config = MachineConfig(qubits=(2,), trace_enabled=False)
        x_spec = JobSpec(config=config, asm=asm, microprograms=(
            ("FLIP", 1, "Pulse {q0}, X180\nWait 4"),))
        i_spec = JobSpec(config=config, asm=asm, microprograms=(
            ("FLIP", 1, "Pulse {q0}, I\nWait 4"),))
        warm = CompileCache(persist_dir=tmp_path)
        warm.resolve(x_spec)
        cold = CompileCache(persist_dir=tmp_path)
        assert not cold.resolve(i_spec).cache_hit  # body is in the key
        assert cold.resolve(x_spec).cache_hit

    def test_worker_processes_share_cache_dir(self, tmp_path, backend):
        if backend == "serial":
            pytest.skip("serial shares the in-process cache directly")
        specs = [flip_spec(seed=s) for s in (1, 2)]
        with ExperimentService(backend=backend, workers=2,
                               cache_dir=tmp_path) as svc:
            svc.run_batch(specs)
        # The workers spilled their resolutions; a cold local cache hits.
        cold = CompileCache(persist_dir=tmp_path)
        assert cold.resolve(specs[0]).cache_hit


class TestSweepArtifacts:
    def test_save_load_round_trip(self, tmp_path):
        sweep = ExperimentService().run_batch(mixed_specs())
        path = tmp_path / "sweep.json"
        sweep.save(path)
        loaded = SweepResult.load(path)
        assert len(loaded) == len(sweep)
        assert loaded.backend == sweep.backend
        assert np.array_equal(loaded.averages(), sweep.averages())
        assert np.allclose(loaded.normalized(), sweep.normalized())
        assert [j.params for j in loaded] == [j.params for j in sweep]
        assert [j.label for j in loaded] == [j.label for j in sweep]
        assert loaded.cache_hit_rate == sweep.cache_hit_rate
        assert loaded.machine_reuse_rate == sweep.machine_reuse_rate
        assert loaded.replay_rate == sweep.replay_rate
        assert loaded[0].run is None  # simulator internals not persisted

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "not_a_sweep.json"
        path.write_text('{"jobs": []}')
        with pytest.raises(ConfigurationError):
            SweepResult.load(path)
