"""Tests for the APS2 baseline and Section 5.1.1/6 comparison models."""

import pytest

from repro.baseline import (
    APS2Config,
    APS2System,
    TriggerDistributionModule,
    allxy_spec,
    codeword_memory_bytes,
    compare_architectures,
    issue_rate_table,
    reconfiguration_cost,
    synthetic_spec,
    upload_seconds,
    waveform_memory_bytes,
)
from repro.baseline.comparison import max_qubits_single_stream
from repro.utils.errors import ConfigurationError


def test_allxy_spec_shape():
    spec = allxy_spec()
    assert len(spec.sequences) == 21
    assert spec.total_operation_slots() == 42
    assert len(spec.unique_operations()) == 5  # I, X180, Y180, X90, Y90 in pairs


def test_paper_memory_numbers():
    """Section 5.1.1: 420 bytes (LUT) vs 2520 bytes (waveform method).

    The paper counts 7 stored pulses (the full Table 1 set, including
    mX90/mY90 that AllXY itself never plays); we reproduce both numbers.
    """
    spec = allxy_spec()
    assert waveform_memory_bytes(spec) == 2520.0
    # The AllXY pairs themselves only draw on 5 primitives.
    assert codeword_memory_bytes(spec) == 300.0
    # With the full Table 1 pulse set uploaded (7 pulses), 420 bytes.
    full_lut = synthetic_spec(n_combinations=1, ops_per_combination=7,
                              n_primitives=7)
    assert codeword_memory_bytes(full_lut) == 420.0


def test_codeword_memory_independent_of_combinations():
    small = synthetic_spec(n_combinations=10, ops_per_combination=2)
    large = synthetic_spec(n_combinations=1000, ops_per_combination=2)
    assert codeword_memory_bytes(small) == codeword_memory_bytes(large)
    assert waveform_memory_bytes(large) == 100 * waveform_memory_bytes(small)


def test_aps2_binaries_count():
    system = APS2System(APS2Config(n_modules=9))
    compiled = system.compile_experiment(allxy_spec())
    assert compiled.n_binaries == 2  # 1 module (1 qubit) + TDM


def test_aps2_multi_qubit_binaries():
    system = APS2System(APS2Config(n_modules=9))
    spec = synthetic_spec(5, 4, n_qubits=8)
    compiled = system.compile_experiment(spec)
    assert compiled.n_binaries == 9


def test_aps2_capacity_limit():
    system = APS2System(APS2Config(n_modules=9))
    spec = synthetic_spec(5, 4, n_qubits=10)
    with pytest.raises(ConfigurationError):
        system.compile_experiment(spec)


def test_aps2_waveform_memory_matches_method():
    system = APS2System()
    assert system.waveform_bytes(allxy_spec()) == 2520.0


def test_tdm_sync_stalls():
    tdm = TriggerDistributionModule(n_modules=4, sync_latency_ns=100)
    assert tdm.total_stall_ns(10) == 1000
    assert tdm.interconnect_links() == 4
    with pytest.raises(ConfigurationError):
        tdm.total_stall_ns(-1)


def test_sync_stalls_in_compiled_experiment():
    system = APS2System(APS2Config(sync_latency_ns=50))
    spec = synthetic_spec(10, 4, n_qubits=2, sync_points=3)
    compiled = system.compile_experiment(spec)
    assert compiled.sync_stall_ns == 10 * 3 * 50


def test_comparison_rows():
    cmp = compare_architectures(allxy_spec())
    assert cmp.quma_binaries == 1
    assert cmp.aps2_binaries == 2
    assert cmp.memory_ratio == pytest.approx(2520.0 / 300.0)
    assert cmp.quma_sync_stall_ns == 0
    assert cmp.quma_upload_s < cmp.aps2_upload_s


def test_reconfiguration_cost_asymmetry():
    """Recalibrating one pulse: QuMA re-uploads one LUT entry; APS2
    re-uploads every waveform containing the op."""
    spec = allxy_spec()
    cost = reconfiguration_cost(spec, "X180")
    assert cost["quma_bytes"] == 60.0  # one 20 ns pulse
    assert cost["aps2_bytes"] > 10 * cost["quma_bytes"]


def test_reconfiguration_unknown_op_is_free_for_quma():
    cost = reconfiguration_cost(allxy_spec(), "NOSUCH")
    assert cost["quma_bytes"] == 0.0
    assert cost["aps2_bytes"] == 0.0


def test_upload_seconds():
    assert upload_seconds(3e6, 3e6) == pytest.approx(1.0)
    with pytest.raises(ConfigurationError):
        upload_seconds(100, 0)


def test_issue_rate_table_saturation():
    rows = issue_rate_table([1, 10, 100, 1000], op_rate_per_qubit_hz=1e6,
                            instructions_per_op=2.0, core_clock_hz=200e6,
                            issue_widths=(1,))
    saturated = {r.n_qubits: r.saturated for r in rows}
    assert not saturated[1]
    assert not saturated[100]
    assert saturated[1000]


def test_vliw_relaxes_issue_rate():
    w1 = max_qubits_single_stream(issue_width=1)
    w4 = max_qubits_single_stream(issue_width=4)
    assert w1 == 100
    assert w4 == 400


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        synthetic_spec(0, 2)
    with pytest.raises(ConfigurationError):
        synthetic_spec(2, 2, n_primitives=0)
