"""Machine pool: reuse, keying, and rebuild equivalence."""

import numpy as np

from repro.core import MachineConfig, QuMA
from repro.service import MachinePool, pool_key

ASM = """
    mov r15, 400
    mov r1, 0
    mov r2, 3
Outer_Loop:
    QNopReg r15
    Pulse {q2}, X180
    Wait 4
    MPG {q2}, 300
    MD {q2}
    addi r1, r1, 1
    bne r1, r2, Outer_Loop
    halt
"""


def config(**kw):
    kw.setdefault("qubits", (2,))
    kw.setdefault("trace_enabled", False)
    return MachineConfig(**kw)


class TestPoolKey:
    def test_dcu_points_excluded(self):
        assert pool_key(config(dcu_points=1)) == pool_key(config(dcu_points=42))

    def test_seed_included(self):
        # The base seed drives readout calibration: different instruments.
        assert pool_key(config(seed=0)) != pool_key(config(seed=1))

    def test_physics_fields_included(self):
        assert pool_key(config()) != pool_key(config(ctpg_delay_ns=100))


class TestMachinePool:
    def test_acquire_builds_then_reuses(self):
        pool = MachinePool()
        m1, reused1 = pool.acquire(config())
        pool.release(m1)
        m2, reused2 = pool.acquire(config())
        assert not reused1 and reused2
        assert m2 is m1
        assert pool.stats() == {"builds": 1, "reuses": 1, "idle": 0, "keys": 1}

    def test_incompatible_config_builds_fresh(self):
        pool = MachinePool()
        m1, _ = pool.acquire(config(seed=0))
        pool.release(m1)
        m2, reused = pool.acquire(config(seed=1))
        assert not reused and m2 is not m1
        assert pool.builds == 2

    def test_config_is_copied(self):
        pool = MachinePool()
        mine = config()
        machine, _ = pool.acquire(mine)
        machine.config.dcu_points = 99
        assert mine.dcu_points == 1

    def test_idle_cap_drops_excess(self):
        pool = MachinePool(max_idle_per_key=1)
        m1, _ = pool.acquire(config())
        m2, _ = pool.acquire(config())
        pool.release(m1)
        pool.release(m2)
        assert pool.idle_count() == 1

    def test_total_cap_evicts_least_recently_released(self):
        pool = MachinePool(max_idle_per_key=4, max_idle_total=2)
        machines = [pool.acquire(config(seed=s))[0] for s in range(3)]
        for m in machines:
            pool.release(m)
        assert pool.idle_count() == 2
        # The oldest release (seed=0) was evicted; seed=1 and 2 survive.
        _, reused0 = pool.acquire(config(seed=0))
        _, reused2 = pool.acquire(config(seed=2))
        assert not reused0 and reused2


class TestResetEquivalence:
    """Pooled reuse must be bit-for-bit identical to a fresh rebuild."""

    def test_reset_matches_fresh_machine(self):
        fresh = QuMA(config(classical_jitter_ns=3))
        fresh.load(ASM)
        want = fresh.run()

        reused = QuMA(config(classical_jitter_ns=3))
        reused.load(ASM)
        reused.run()  # dirty every unit
        reused.reset()
        reused.load(ASM)
        got = reused.run()

        assert np.array_equal(want.averages, got.averages)
        assert want.duration_ns == got.duration_ns
        assert want.registers == got.registers
        assert want.instructions_executed == got.instructions_executed

    def test_reset_with_new_seed_changes_noise_only(self):
        machine = QuMA(config())
        machine.load(ASM)
        base = machine.run()
        machine.reset(seed=123)
        machine.load(ASM)
        other = machine.run()
        # Same timing (deterministic domain), different statistics.
        assert base.duration_ns == other.duration_ns
        assert not np.array_equal(base.averages, other.averages)

    def test_reset_resizes_dcu(self):
        machine = QuMA(config(dcu_points=1))
        machine.reset(dcu_points=3)
        assert machine.config.dcu_points == 3
        assert machine.dcu.k_points == 3
        assert machine.measurement.dcu is machine.dcu

    def test_reset_clears_trace_and_results(self):
        machine = QuMA(MachineConfig(qubits=(2,)))  # tracing on
        machine.load(ASM)
        machine.run()
        assert len(machine.trace) > 0
        machine.reset()
        assert len(machine.trace) == 0
        assert machine.measurement.results == []
        assert machine.sim.now == 0
        assert machine.tcu.queues_empty()
