"""Tests for the curve-fitting utilities."""

import numpy as np
import pytest

from repro.experiments import fit_damped_cosine, fit_exponential_decay, fit_rb_decay
from repro.utils.errors import CalibrationError


def test_exponential_fit_recovers_parameters():
    t = np.linspace(0, 50000, 20)
    y = 0.9 * np.exp(-t / 18000.0) + 0.05
    fit = fit_exponential_decay(t, y)
    assert fit.tau == pytest.approx(18000.0, rel=1e-6)
    assert fit.amplitude == pytest.approx(0.9, rel=1e-6)
    assert fit.offset == pytest.approx(0.05, abs=1e-9)


def test_exponential_fit_with_noise():
    rng = np.random.default_rng(1)
    t = np.linspace(0, 60000, 30)
    y = np.exp(-t / 20000.0) + rng.normal(0, 0.01, len(t))
    fit = fit_exponential_decay(t, y)
    assert fit.tau == pytest.approx(20000.0, rel=0.1)


def test_exponential_fit_rising():
    t = np.linspace(0, 30000, 20)
    y = 0.5 - 0.5 * np.exp(-t / 12000.0)
    fit = fit_exponential_decay(t, y)
    assert fit.tau == pytest.approx(12000.0, rel=1e-6)
    assert fit.amplitude == pytest.approx(-0.5, rel=1e-6)


def test_exponential_fit_needs_points():
    with pytest.raises(CalibrationError):
        fit_exponential_decay(np.array([1, 2]), np.array([1, 2]))


def test_damped_cosine_recovers_parameters():
    t = np.linspace(0, 24000, 60)
    y = 0.5 * np.exp(-t / 12000.0) * np.cos(2 * np.pi * 4e-4 * t) + 0.5
    fit = fit_damped_cosine(t, y)
    assert fit.tau == pytest.approx(12000.0, rel=0.05)
    assert fit.frequency == pytest.approx(4e-4, rel=0.05)
    assert fit.offset == pytest.approx(0.5, abs=0.02)


def test_damped_cosine_with_frequency_guess():
    t = np.linspace(0, 20000, 50)
    y = 0.4 * np.exp(-t / 9000.0) * np.cos(2 * np.pi * 5e-4 * t + 0.3) + 0.5
    fit = fit_damped_cosine(t, y, freq_guess=5e-4)
    assert fit.tau == pytest.approx(9000.0, rel=0.05)
    assert fit.phase == pytest.approx(0.3, abs=0.05)


def test_damped_cosine_needs_points():
    with pytest.raises(CalibrationError):
        fit_damped_cosine(np.arange(4), np.arange(4))


def test_rb_fit_recovers_parameters():
    m = np.array([1, 2, 5, 10, 20, 50, 100])
    y = 0.5 * 0.98 ** m + 0.5
    fit = fit_rb_decay(m, y)
    assert fit.p == pytest.approx(0.98, rel=1e-4)
    assert fit.error_per_clifford == pytest.approx(0.01, rel=1e-2)
    assert fit.average_fidelity == pytest.approx(0.99, rel=1e-3)


def test_rb_fit_with_noise():
    rng = np.random.default_rng(2)
    m = np.array([1, 5, 10, 20, 40, 80, 160])
    y = 0.45 * 0.995 ** m + 0.5 + rng.normal(0, 0.005, len(m))
    fit = fit_rb_decay(m, y)
    assert fit.p == pytest.approx(0.995, abs=0.004)


def test_rb_fit_needs_points():
    with pytest.raises(CalibrationError):
        fit_rb_decay(np.array([1, 2]), np.array([1.0, 0.9]))
