"""Tests for ASCII reporting helpers."""

from repro.reporting import format_queue_tables, format_table, sparkline


def test_format_table_alignment():
    text = format_table(["a", "long_header"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert lines[0].startswith("a ")
    assert "long_header" in lines[0]
    assert len(lines) == 4
    # All rows same width.
    assert len(set(len(ln) for ln in lines)) == 1


def test_format_table_title():
    text = format_table(["x"], [[1]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_queue_tables_front_at_bottom():
    snap = {"timing": ["(4, 2)", "(40000, 1)"], "pulse": ["(I, 1)"],
            "mpg": [], "md": []}
    text = format_queue_tables(snap, td_cycles=0)
    lines = text.splitlines()
    assert "T_D = 0" in lines[0]
    # The front entry (40000, 1) is on the last line.
    assert "(40000, 1)" in lines[-1]
    assert "(I, 1)" in lines[-1]
    assert "(4, 2)" in lines[-2]


def test_sparkline_monotone():
    s = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
    assert s[0] == "▁"
    assert s[-1] == "█"
    assert len(s) == 8


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"
