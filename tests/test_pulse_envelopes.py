"""Tests for pulse envelope shapes."""

import numpy as np
import pytest

from repro.pulse import gaussian, drag, square, zeros


def test_zeros_identity_pulse():
    env = zeros(20)
    assert len(env) == 20
    assert np.all(env == 0)


def test_gaussian_peak_near_center():
    env = gaussian(20, 5.0, amplitude=0.8)
    assert len(env) == 20
    peak = np.argmax(np.abs(env))
    assert peak in (9, 10)
    assert np.abs(env[peak]) <= 0.8 + 1e-12


def test_gaussian_starts_and_ends_at_zero():
    env = gaussian(20, 5.0)
    assert abs(env[0]) < 0.02
    assert abs(env[-1]) < 0.02


def test_gaussian_phase_rotates_iq():
    x = gaussian(20, 5.0, 1.0, 0.0)
    y = gaussian(20, 5.0, 1.0, np.pi / 2)
    assert np.allclose(x.imag, 0)
    assert np.allclose(y.real, 0, atol=1e-12)
    assert np.allclose(y.imag, x.real)


def test_gaussian_symmetric():
    env = gaussian(20, 5.0).real
    assert np.allclose(env, env[::-1], atol=1e-12)


def test_gaussian_default_sigma_quarter_duration():
    a = gaussian(20)
    b = gaussian(20, 5.0)
    assert np.allclose(a, b)


def test_gaussian_rejects_bad_args():
    with pytest.raises(ValueError):
        gaussian(0)
    with pytest.raises(ValueError):
        gaussian(20, -1.0)


def test_drag_reduces_to_gaussian_at_beta_zero():
    assert np.allclose(drag(20, 5.0, beta=0.0), gaussian(20, 5.0))


def test_drag_quadrature_is_derivative_like():
    env = drag(20, 5.0, beta=0.5)
    # Derivative of a symmetric bump is antisymmetric.
    q = env.imag
    assert q[2] * q[-3] < 0


def test_square_flat_top():
    env = square(10, 0.5)
    assert np.allclose(env, 0.5)


def test_square_with_ramps():
    env = square(10, 1.0, rise_ns=3)
    assert env[0] == 0.0
    assert np.allclose(env.real[3:7], 1.0)
    with pytest.raises(ValueError):
        square(4, 1.0, rise_ns=3)
