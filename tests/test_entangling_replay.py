"""Bitwise parity of the joint round-replay fast path (register jobs).

The contract under test: with ``replay=True`` (now the entangling
default) every correlated observable — per-qubit statistics, the
joint-outcome histogram and its derived probabilities/marginals, and the
fitted parity/fidelity estimates — is **bit-identical** to the same
experiment with replay off, on every service backend.  Replay must
therefore be a pure speedup, never a physics change.

Also covered: the ``ReplayCache`` serves one verified joint plan to
every repeat of a sweep (warm hits replay all rounds), and silent
fallbacks surface through ``JobResult.replay_fallback_reason``.

Set ``REPRO_SERVICE_BACKEND=serial|process|async`` to pin the
parametrized backend (the CI matrix runs one backend per job).
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.session import Session

ALL_BACKENDS = ("serial", "process", "async")
_PINNED = os.environ.get("REPRO_SERVICE_BACKEND")
BACKENDS_UNDER_TEST = (_PINNED,) if _PINNED else ALL_BACKENDS

#: (experiment, targets, params) — widths 2-4 across the whole family.
CASES = (
    ("cz_calibration", ((0, 1),),
     dict(phases=[0.0, 1.5, 3.0, 4.5], n_rounds=6)),
    ("bell", ((0, 1),), dict(n_rounds=8)),
    ("ghz", ((0, 1),), dict(n_rounds=8, repeats=2)),
    ("ghz", ((0, 1, 2),), dict(n_rounds=8, repeats=2)),
    ("ghz", ((0, 1, 2, 3),), dict(n_rounds=6, repeats=1)),
)
CASE_IDS = [f"{name}-w{len(targets[0])}" for name, targets, _ in CASES]


def _normalize(value):
    """Recursively turn an analysis payload into comparable plain data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _normalize({f.name: getattr(value, f.name)
                           for f in dataclasses.fields(value)})
    if isinstance(value, dict):
        return {k: _normalize(v) for k, v in sorted(value.items(),
                                                    key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def _run(backend, name, targets, params, replay):
    with Session(backend=backend, workers=2, seed=11) as session:
        future = session.submit_experiment(name, targets=targets,
                                           replay=replay, **params)
        analysis = future.result()
        jobs = [f.result() for f in future.futures]
    payload = [(job.label, job.seed,
                np.asarray(job.averages).tobytes(),
                np.asarray(job.joint_counts).tobytes(),
                np.asarray(job.joint_probabilities).tobytes(),
                np.asarray(job.register_normalized).tobytes(),
                job.s_grounds, job.s_exciteds)
               for job in jobs]
    return payload, _normalize(analysis), jobs


class TestReplayOnOffParity:
    @pytest.mark.parametrize(("name", "targets", "params"), CASES,
                             ids=CASE_IDS)
    def test_bitwise_parity_serial(self, name, targets, params):
        on_payload, on_analysis, on_jobs = _run("serial", name, targets,
                                                params, replay=True)
        off_payload, off_analysis, off_jobs = _run("serial", name, targets,
                                                   params, replay=False)
        assert on_payload == off_payload
        assert on_analysis == off_analysis
        # Replay genuinely engaged — and honestly reported either way.
        assert all(j.replayed_rounds > 0 for j in on_jobs)
        assert all(j.replay_fallback_reason is None for j in on_jobs)
        assert all(j.replayed_rounds == 0 for j in off_jobs)
        assert all(j.replay_fallback_reason == "replay disabled by spec"
                   for j in off_jobs)

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
    @pytest.mark.parametrize(("name", "targets", "params"), CASES,
                             ids=CASE_IDS)
    def test_bitwise_parity_across_backends(self, name, targets, params,
                                            backend):
        """Replay-on on any backend == replay-off on serial, byte for
        byte — so mixing backends and replay modes can never skew an
        estimate."""
        on_payload, on_analysis, _ = _run(backend, name, targets,
                                          params, replay=True)
        off_payload, off_analysis, _ = _run("serial", name, targets,
                                            params, replay=False)
        assert on_payload == off_payload
        assert on_analysis == off_analysis


class TestJointPlanCache:
    def test_repeats_share_one_verified_plan(self):
        """Repeat #0 pays the record+verify build; every later repeat of
        the same register sweep replays warm from the cache."""
        with Session(backend="serial", seed=11) as session:
            future = session.submit_experiment("ghz", targets=((0, 1, 2),),
                                               n_rounds=8, repeats=3)
            future.result()
            jobs = [f.result() for f in future.futures]
            stats = session.stats()
        assert not jobs[0].replay_plan_hit
        assert jobs[0].replayed_rounds == 6  # rounds 1-2 recorded
        for job in jobs[1:]:
            assert job.replay_plan_hit
            assert job.replayed_rounds == 8  # all rounds, no event kernel
        cache_stats = stats["replay_cache"]
        assert cache_stats["hits"] >= 2

    def test_fallback_reason_surfaces_on_jobs(self):
        """An ineligible program reports why it ran the event kernel."""
        with Session(backend="serial", seed=11) as session:
            # n_rounds=2 is below the three-round replay minimum.
            future = session.submit_experiment("ghz", targets=((0, 1),),
                                               n_rounds=2, repeats=1)
            future.result()
            jobs = [f.result() for f in future.futures]
        assert jobs[0].replayed_rounds == 0
        assert "three rounds" in jobs[0].replay_fallback_reason
