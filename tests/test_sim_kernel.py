"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.at(30, lambda: order.append("c"))
    sim.at(10, lambda: order.append("a"))
    sim.at(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_run_fifo():
    sim = Simulator()
    order = []
    sim.at(10, lambda: order.append(1))
    sim.at(10, lambda: order.append(2))
    sim.at(10, lambda: order.append(3))
    sim.run()
    assert order == [1, 2, 3]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.at(17, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [17]
    assert sim.now == 17


def test_after_is_relative():
    sim = Simulator()
    seen = []

    def first():
        sim.after(5, lambda: seen.append(sim.now))

    sim.at(10, first)
    sim.run()
    assert seen == [15]


def test_cannot_schedule_in_past():
    sim = Simulator()
    sim.at(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.after(-1, lambda: None)


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.at(10, lambda: fired.append(10))
    sim.at(100, lambda: fired.append(100))
    sim.run(until=50)
    assert fired == [10]
    assert sim.now == 50
    sim.run()
    assert fired == [10, 100]


def test_cancelled_event_skipped():
    sim = Simulator()
    fired = []
    ev = sim.at(10, lambda: fired.append("x"))
    ev.cancel()
    sim.run()
    assert fired == []


def test_events_scheduled_during_run():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(sim.now)
        if n > 0:
            sim.after(10, lambda: chain(n - 1))

    sim.at(0, lambda: chain(3))
    sim.run()
    assert seen == [0, 10, 20, 30]


def test_step_single_event():
    sim = Simulator()
    fired = []
    sim.at(5, lambda: fired.append(1))
    sim.at(6, lambda: fired.append(2))
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_max_events_guard():
    sim = Simulator()

    def forever():
        sim.after(1, forever)

    sim.at(0, forever)
    sim.run(max_events=100)
    assert sim.now <= 100


def test_pending_counts_live_events():
    sim = Simulator()
    sim.at(1, lambda: None)
    ev = sim.at(2, lambda: None)
    ev.cancel()
    assert sim.pending() == 1
