"""Tests for the micro-operation unit (uOp -> codeword sequences)."""

import pytest

from repro.awg import CodewordTriggeredPulseGenerator
from repro.core.micro_op import MicroOperationUnit
from repro.pulse import build_single_qubit_lut
from repro.sim import Simulator, TraceRecorder
from repro.utils.errors import MicrocodeError

LUT = build_single_qubit_lut()


def make_unit(delay_ns=5, ctpg_delay=80):
    sim = Simulator()
    played = []
    ctpg = CodewordTriggeredPulseGenerator(
        name="ctpg0", sim=sim, lut=LUT, target_qubits=(0,),
        sink=lambda q, wf, t: played.append((wf.name, t)),
        fixed_delay_ns=ctpg_delay)
    unit = MicroOperationUnit("uop0", sim, ctpg, delay_ns=delay_ns,
                              trace=TraceRecorder())
    return sim, unit, ctpg, played


def test_default_forwarding():
    """AllXY case: 'the micro-operation unit simply forwards the codewords'."""
    sim, unit, ctpg, played = make_unit()
    sim.at(0, lambda: unit.trigger(1, "X180"))
    sim.run()
    # uop delay 5 + ctpg delay 80.
    assert played == [("X180", 85)]


def test_unit_delay_applies():
    sim, unit, ctpg, played = make_unit(delay_ns=15)
    sim.at(100, lambda: unit.trigger(2, "X90"))
    sim.run()
    assert played == [("X90", 195)]


def test_composite_z_sequence():
    """The paper's Seq_Z example: Z emulated as Y then X,
    Seq_Z : ([0, 4]; [4, 1]) with Table 1 codewords (Y180=4, X180=1)."""
    sim, unit, ctpg, played = make_unit()
    unit.define_sequence(9, [(0, 4), (4, 1)])
    sim.at(0, lambda: unit.trigger(9, "Z180"))
    sim.run()
    assert played == [("Y180", 85), ("X180", 105)]  # 4 cycles = 20 ns apart


def test_sequence_for_default():
    _, unit, _, _ = make_unit()
    assert unit.sequence_for(3) == [(0, 3)]


def test_define_sequence_validation():
    _, unit, _, _ = make_unit()
    with pytest.raises(MicrocodeError):
        unit.define_sequence(1, [])
    with pytest.raises(MicrocodeError):
        unit.define_sequence(1, [(-1, 0)])
    with pytest.raises(MicrocodeError):
        unit.define_sequence(1, [(0, -2)])


def test_trace_records_uop_and_codewords():
    sim, unit, ctpg, _ = make_unit()
    unit.trace.clear()
    sim.at(0, lambda: unit.trigger(1, "X180"))
    sim.run()
    kinds = [r.kind for r in unit.trace]
    assert "uop" in kinds
    assert "codeword_out" in kinds
