"""Fault-injection tests: every failure path fails loudly and observably."""

import pytest

from repro.core import MachineConfig, QuMA
from repro.core.events import PulseEvent
from repro.pulse import PulseCalibration
from repro.utils.errors import ConfigurationError, QueueOverflow


def make_machine(**kwargs):
    kwargs.setdefault("qubits", (2,))
    return QuMA(MachineConfig(**kwargs))


def test_direct_queue_overflow_raises():
    """Bypassing the QMB's back-pressure check overflows loudly."""
    machine = make_machine(queue_capacity=2)
    machine.tcu.push_time_point(10, 1)
    machine.tcu.push_time_point(10, 2)
    with pytest.raises(QueueOverflow):
        machine.tcu.push_time_point(10, 3)


def test_event_queue_overflow_raises():
    machine = make_machine(queue_capacity=2)
    ev = PulseEvent(label=1, uop=0, op_name="I", channel="uop2", qubits=(2,))
    machine.tcu.push_event("pulse", ev)
    machine.tcu.push_event("pulse", ev)
    with pytest.raises(QueueOverflow):
        machine.tcu.push_event("pulse", ev)


def test_md_without_mpg_counts_orphans_and_gives_noise_result():
    machine = make_machine()
    machine.load("Wait 4\nMD {q2}, r7\nMD {q2}, r8\nhalt")
    result = machine.run()
    assert result.completed
    assert result.orphan_discriminations == 2
    # Noise-only integration lands near zero, far from the |1> statistic.
    cal = machine.readout_calibration
    stats = [r.statistic for r in machine.measurement.results]
    assert all(abs(s) < abs(cal.s_excited) / 2 for s in stats)


def test_stale_label_feedback_bug_is_recorded_not_hung():
    """A branch path that skips its Wait attaches events to a fired label;
    the machine completes and reports the violation."""
    machine = make_machine()
    machine.load("""
        mov r0, 1
        Wait 4
        MPG {q2}, 300
        MD {q2}, r7
        bne r7, r0, skip
        Wait 400
        Pulse {q2}, X180
    skip:
        MPG {q2}, 300
        MD {q2}, r8
        halt
    """)
    result = machine.run()
    assert result.completed
    assert any("stale_event" in v for v in result.timing_violations)


def test_pulse_to_unwired_qubit_rejected():
    machine = make_machine(qubits=(2,))
    machine.load("Wait 4\nPulse {q5}, X180\nhalt")
    with pytest.raises(ConfigurationError):
        machine.run()


def test_mpg_to_unwired_qubit_rejected():
    machine = make_machine(qubits=(2,))
    machine.load("Wait 4\nMPG {q5}, 300\nhalt")
    with pytest.raises(ConfigurationError):
        machine.run()


def test_md_to_unwired_qubit_rejected():
    machine = make_machine(qubits=(2,))
    machine.load("Wait 4\nMD {q5}\nhalt")
    with pytest.raises(ConfigurationError):
        machine.run()


def test_cz_without_flux_channel_rejected_at_runtime():
    machine = QuMA(MachineConfig(qubits=(0, 1)))
    machine.load("Wait 4\nPulse {q0, q1}, CZ\nhalt")
    with pytest.raises(ConfigurationError):
        machine.run()


def test_overlapping_gate_slots_rejected_by_device():
    """A microprogram with too-tight waits produces overlapping drives on
    one qubit — the device refuses rather than silently summing."""
    machine = make_machine()
    machine.load("""
        Wait 4
        Pulse {q2}, X90
        Wait 1
        Pulse {q2}, X90
        halt
    """)
    with pytest.raises(ConfigurationError):
        machine.run()


def test_missing_lut_entry_rejected():
    machine = make_machine()
    # Sabotage: remove X180 from the drive LUT after construction.
    lut = machine.ctpgs["ctpg2"].lut
    del lut._entries[1]
    machine.load("Wait 4\nPulse {q2}, X180\nhalt")
    with pytest.raises(ConfigurationError):
        machine.run()


def test_underruns_recorded_with_slow_controller():
    machine = make_machine(classical_issue_ns=200, trace_enabled=False)
    body = "\n".join("Wait 2\nPulse {q2}, I" for _ in range(10))
    machine.load(body + "\nhalt")
    result = machine.run()
    assert result.completed
    assert len([v for v in result.timing_violations if "late_ns" in v]) > 0


def test_miscalibrated_amplitude_overflow_rejected_at_config():
    with pytest.raises(ConfigurationError):
        MachineConfig(qubits=(2,),
                      calibration=PulseCalibration(kappa=0.05)).calibration \
            .amplitude_for(3.14159)


def test_flux_pair_with_unwired_qubit_rejected():
    with pytest.raises(ConfigurationError):
        MachineConfig(qubits=(0,), flux_pairs=((0, 1),))


def test_duplicate_qubit_labels_rejected():
    with pytest.raises(ConfigurationError):
        MachineConfig(qubits=(2, 2))


def test_run_without_load_rejected():
    machine = make_machine()
    with pytest.raises(Exception):
        machine.run()
