"""Target-register protocol and the entangling experiment family.

The tentpole contracts under test:

* target normalization: ``qubits=`` fans out single-qubit targets,
  ``targets=`` addresses registers, and malformed registers fail loudly;
* flux-topology routing: ``Session.config_for`` auto-wires the flux (CZ)
  chains and staggered readout IFs a register run needs, and pinned
  configs that cannot serve a target are rejected with clear errors;
* correlated readout: register jobs carry per-qubit calibration points
  and a joint-outcome histogram whose counts sum to the round budget;
* physics: Bell correlations/fidelity, the GHZ two-branch population,
  and the CZ conditional phase land near their ideal values;
* registry-driven parity: every registered experiment (including the
  entangling family) produces bit-identical job streams across the
  serial/process/async backends, and scoped draining keeps concurrent
  pair sweeps on one service from stealing each other's results.

Set ``REPRO_SERVICE_BACKEND=serial|process|async`` to pin the
parametrized backend (the CI matrix runs one backend per job).
"""

import os

import numpy as np
import pytest

from repro import MachineConfig, Session
from repro.experiments import REGISTRY
from repro.experiments.base import normalize_targets, target_key, target_label
from repro.readout import ReadoutParams
from repro.readout.calibration import joint_outcome_counts
from repro.service import ExperimentService, JobSpec
from repro.utils.errors import CalibrationError, ConfigurationError, JobError

ALL_BACKENDS = ("serial", "process", "async")
_PINNED = os.environ.get("REPRO_SERVICE_BACKEND")
BACKENDS_UNDER_TEST = (_PINNED,) if _PINNED else ALL_BACKENDS

#: Fast parameters for the registry-driven parity suite: every
#: registered experiment MUST have an entry (asserted below), so a new
#: experiment cannot ship without joining the cross-backend contract.
FAST_PARAMS = {
    "rabi": (None, dict(amplitudes=[0.0, 0.2, 0.4, 0.6], n_rounds=2)),
    "rb": (None, dict(lengths=[1, 4], sequences_per_length=1, n_rounds=2)),
    "allxy": (None, dict(n_rounds=2)),
    "t1": (None, dict(delays_cycles=[4, 8, 16], n_rounds=2)),
    "ramsey": (None, dict(delays_cycles=[4, 8, 16, 20], n_rounds=2)),
    "echo": (None, dict(delays_cycles=[4, 8, 16], n_rounds=2)),
    "cz_calibration": (((0, 1),),
                       dict(phases=[0.0, 1.5, 3.0, 4.5], n_rounds=4)),
    "bell": (((0, 1),), dict(n_rounds=4)),
    "ghz": (((0, 1, 2),), dict(n_rounds=4, repeats=2)),
    "mitigated": (((0, 1),), dict(experiment="bell", n_rounds=4,
                                  scales=(1.0, 2.0), cal_shots=8)),
}


def pair_config(**kwargs):
    """A 0-1 flux pair machine with multiplex-ready readouts."""
    kwargs.setdefault("qubits", (0, 1))
    kwargs.setdefault("flux_pairs", ((0, 1),))
    kwargs.setdefault("readouts", (ReadoutParams(f_if_hz=40e6),
                                   ReadoutParams(f_if_hz=52e6)))
    kwargs.setdefault("trace_enabled", False)
    return MachineConfig(**kwargs)


# -- target normalization ----------------------------------------------------


def test_normalize_targets_from_qubits():
    assert normalize_targets(qubits=2) == ((2,),)
    assert normalize_targets(qubits=(0, 1)) == ((0,), (1,))
    assert normalize_targets() is None


def test_normalize_targets_registers():
    assert normalize_targets(targets=((0, 1),)) == ((0, 1),)
    assert normalize_targets(targets=(2, (0, 1))) == ((2,), (0, 1))
    assert normalize_targets(targets=3) == ((3,),)
    # Chain qubits may be shared across pair targets.
    assert normalize_targets(targets=((0, 1), (1, 2))) == ((0, 1), (1, 2))


def test_normalize_targets_rejects_malformed():
    with pytest.raises(ConfigurationError, match="not both"):
        normalize_targets(targets=((0, 1),), qubits=(0,))
    with pytest.raises(ConfigurationError, match="within target"):
        normalize_targets(targets=((0, 0),))
    with pytest.raises(ConfigurationError, match="duplicate targets"):
        normalize_targets(targets=((0, 1), (0, 1)))
    with pytest.raises(ConfigurationError, match="at least one"):
        normalize_targets(targets=((),))
    with pytest.raises(ConfigurationError, match="at least one"):
        normalize_targets(targets=())


def test_target_key_and_label():
    assert target_key((2,)) == 2
    assert target_key((0, 1)) == (0, 1)
    assert target_label((0, 1, 2)) == "q0-1-2"


def test_qubits_spelling_matches_targets_spelling():
    """targets=((0,), (1,)) is exactly qubits=(0, 1)."""
    with Session(seed=3) as session:
        amps = [0.0, 0.2, 0.4, 0.6]
        via_qubits = session.submit_experiment(
            "rabi", qubits=(0, 1), amplitudes=amps, n_rounds=2)
        via_qubits.result()
        via_targets = session.submit_experiment(
            "rabi", targets=((0,), (1,)), amplitudes=amps, n_rounds=2)
        via_targets.result()
    for a, b in zip(via_qubits.sweep.jobs, via_targets.sweep.jobs):
        assert np.array_equal(a.averages, b.averages)
        assert (a.s_ground, a.s_excited) == (b.s_ground, b.s_excited)


def test_wrong_arity_rejected():
    with Session() as session:
        with pytest.raises(ConfigurationError, match="2-qubit targets"):
            session.run("bell", targets=((0, 1, 2),))
        with pytest.raises(ConfigurationError, match="at least 2"):
            session.run("ghz", targets=((0,),))


# -- flux-topology routing ---------------------------------------------------


def test_session_config_auto_wires_flux_chain():
    with Session(seed=5) as session:
        config = session.config_for(targets=((0, 1, 2),))
    assert config.qubits == (0, 1, 2)
    assert {frozenset(p) for p in config.flux_pairs} == \
        {frozenset((0, 1)), frozenset((1, 2))}
    # Multiplexed readout gets pairwise-distinct IFs.
    ifs = [r.f_if_hz for r in config.readouts]
    assert len(set(ifs)) == 3


def test_session_config_single_qubit_targets_unchanged():
    """All-single-qubit runs keep the historic config shape bit-for-bit."""
    with Session(seed=5) as session:
        config = session.config_for(qubits=(0, 1))
        legacy = MachineConfig(qubits=(0, 1), trace_enabled=False, seed=5)
    assert config.fingerprint() == legacy.fingerprint()


def test_pair_sweep_merges_flux_pairs():
    with Session() as session:
        config = session.config_for(targets=((0, 1), (1, 2)))
    assert config.qubits == (0, 1, 2)
    assert {frozenset(p) for p in config.flux_pairs} == \
        {frozenset((0, 1)), frozenset((1, 2))}


def test_pinned_config_without_flux_pair_rejected():
    config = MachineConfig(qubits=(0, 1), trace_enabled=False)
    with Session(config) as session:
        with pytest.raises(ConfigurationError, match="flux"):
            session.run("bell", targets=((0, 1),))


def test_pinned_config_with_degenerate_ifs_rejected():
    config = MachineConfig(qubits=(0, 1), flux_pairs=((0, 1),),
                           trace_enabled=False)  # shared default readout
    with Session(config) as session:
        with pytest.raises(ConfigurationError, match="IF"):
            session.run("bell", targets=((0, 1),))


def test_entangling_defaults_to_first_flux_pair():
    with Session(pair_config()) as session:
        experiment = session.create("bell")
    assert experiment.targets == ((0, 1),)


def test_entangling_runs_without_explicit_targets():
    """session.run("bell") with no pinned config wires its own pair."""
    with Session() as session:
        bell = session.create("bell")
        assert bell.targets == ((0, 1),)
        assert bell.config.flux_pairs == ((0, 1),)
        ghz = session.create("ghz")
        assert ghz.targets == ((0, 1, 2),)
        result = session.run("bell", n_rounds=4, bases=("ZZ",))
    assert result.correlations["ZZ"] is not None
    # Single-qubit experiments keep the historic first-wired-qubit default.
    with Session() as session:
        assert session.create("allxy").targets == ((2,),)


# -- correlated readout ------------------------------------------------------


def test_joint_outcome_counts_thresholding():
    stats = np.array([[0.0, 1.0],   # q0 low, q1 high -> index 2
                      [1.0, 1.0],   # both high       -> index 3
                      [0.0, 0.0],   # both low        -> index 0
                      [1.0, 0.0]])  # q0 high, q1 low -> index 1
    counts = joint_outcome_counts(stats, np.array([0.5, 0.5]))
    assert counts.tolist() == [1, 1, 1, 1]
    # Discrimination matches the MDU: strictly greater than threshold.
    at_threshold = joint_outcome_counts(np.array([[0.5, 0.5]]),
                                        np.array([0.5, 0.5]))
    assert at_threshold.tolist() == [1, 0, 0, 0]
    with pytest.raises(CalibrationError, match="n_rounds"):
        joint_outcome_counts(np.zeros(4), np.zeros(2))
    with pytest.raises(CalibrationError, match="threshold"):
        joint_outcome_counts(np.zeros((2, 2)), np.zeros(3))


def test_register_job_carries_per_qubit_calibration_and_histogram():
    n_rounds = 6
    with Session(pair_config()) as session:
        future = session.submit_experiment("bell", n_rounds=n_rounds,
                                           bases=("ZZ",))
        future.result()
    (job,) = future.sweep.jobs
    assert job.cal_targets == (0, 1)
    assert len(job.s_grounds) == len(job.s_exciteds) == 2
    assert job.s_grounds != job.s_exciteds
    # One joint outcome per round.
    assert int(np.sum(job.joint_counts)) == n_rounds
    assert np.isclose(np.sum(job.joint_probabilities), 1.0)
    assert job.register_normalized.shape == (2,)


def test_cal_targets_spec_validation():
    config = pair_config()
    with pytest.raises(ConfigurationError, match="k_points"):
        JobSpec(config=config, asm="halt", k_points=1, cal_targets=(0, 1))
    with pytest.raises(ConfigurationError, match="not wired"):
        JobSpec(config=config, asm="halt", k_points=1, cal_targets=(7,))
    with pytest.raises(ConfigurationError, match="duplicate"):
        JobSpec(config=config, asm="halt", k_points=2, cal_targets=(0, 0))
    with pytest.raises(ConfigurationError, match="at least one"):
        JobSpec(config=config, asm="halt", k_points=1, cal_targets=())


def test_desynced_register_stream_fails_loudly():
    """An MD stream that is not whole register rounds must not silently
    shift statistics to the wrong qubit columns."""
    asm = """
        Pulse {q0}, X180
        Wait 4
        MPG {q0, q1}, 300
        MD {q0, q1}
        Wait 4
        MPG {q0}, 300
        MD {q0}
        halt
    """
    spec = JobSpec(config=pair_config(), asm=asm, k_points=2, replay=False,
                   cal_targets=(0, 1))
    with ExperimentService(backend="serial") as service:
        # Terminal job failures surface uniformly as JobError; the
        # original type and message are preserved in its text.
        with pytest.raises(JobError, match="ConfigurationError.*register "
                                           "rounds"):
            service.run_job(spec)


def test_sweep_artifact_roundtrips_joint_counts(tmp_path):
    with Session(pair_config()) as session:
        future = session.submit_experiment("bell", n_rounds=4, bases=("ZZ",))
        future.result()
    path = tmp_path / "bell.json"
    future.sweep.save(str(path))
    from repro.service.job import SweepResult

    loaded = SweepResult.load(str(path))
    (job,), (orig,) = loaded.jobs, future.sweep.jobs
    assert job.cal_targets == orig.cal_targets
    assert job.s_grounds == orig.s_grounds
    assert job.s_exciteds == orig.s_exciteds
    assert np.array_equal(job.joint_counts, orig.joint_counts)


# -- physics -----------------------------------------------------------------


def test_bell_correlations_and_fidelity():
    with Session(pair_config()) as session:
        result = session.run("bell", n_rounds=48)
    assert result.correlations["ZZ"] > 0.8
    assert result.correlations["XX"] > 0.8
    assert result.correlations["YY"] < -0.8
    assert result.fidelity > 0.85
    assert result.n_shots == 48


def test_bell_partial_bases_have_no_fidelity():
    with Session(pair_config()) as session:
        result = session.run("bell", n_rounds=8, bases=("ZZ", "XX"))
    assert result.fidelity is None
    assert set(result.correlations) == {"ZZ", "XX"}


def test_ghz_population_concentrates_on_branches():
    with Session() as session:
        result = session.run("ghz", targets=((0, 1, 2),), n_rounds=24,
                             repeats=2)
    assert result.population > 0.85
    assert result.p_all_zero > 0.2
    assert result.p_all_one > 0.2
    assert result.n_shots == 48
    assert len(result.counts) == 8


def test_cz_conditional_phase_near_pi():
    with Session() as session:
        result = session.run("cz_calibration", targets=((0, 1),), n_rounds=32)
    assert result.phase_error_rad() < 0.35
    assert result.visibility > 0.6
    assert result.control_fidelity > 0.9


def test_register_order_does_not_break_analysis():
    """The assembler sorts multiplexed MD sets, so the statistic stream
    is ascending-qubit order whatever the register's own ordering; the
    analysis must map marginals through stream positions (regression:
    reversed registers once swapped control and target columns)."""
    with Session() as session:
        reversed_cz = session.run("cz_calibration", targets=((1, 0),),
                                  n_rounds=32)
    assert reversed_cz.phase_error_rad() < 0.35
    assert reversed_cz.control_fidelity > 0.9
    with Session() as session:
        reversed_ghz = session.run("ghz", targets=((2, 1, 0),), n_rounds=16,
                                   repeats=1)
    assert reversed_ghz.population > 0.85
    # Stream order is recorded on the result, not assumed by callers.
    from repro.experiments.entangling import stream_position

    assert stream_position((1, 0), 1) == 1
    assert stream_position((2, 1, 0), 2) == 2


def test_pair_sweep_returns_mapping_keyed_by_register():
    with Session() as session:
        results = session.run("bell", targets=((0, 1), (1, 2)), n_rounds=8,
                              bases=("ZZ",))
    assert sorted(results) == [(0, 1), (1, 2)]
    for result in results.values():
        assert result.correlations["ZZ"] > 0.5


def test_entangling_incremental_estimate_converges():
    """Final update() equals the one-shot analyze() to the bit."""
    with Session() as session:
        future = session.submit_experiment("ghz", targets=((0, 1, 2),),
                                           n_rounds=6, repeats=3)
        estimates = [est for _, est in future.stream(fit=True)]
        result = future.result()
    final = estimates[-1]
    assert final.complete
    assert final.values["population"] == result.population
    assert final.values["p_all_zero"] == result.p_all_zero
    assert final.values["p_all_one"] == result.p_all_one


def test_cz_estimate_matches_analysis():
    with Session() as session:
        future = session.submit_experiment("cz_calibration",
                                           targets=((0, 1),),
                                           phases=[0.0, 1.2, 2.4, 3.6, 4.8],
                                           n_rounds=8)
        result = future.result()
        final = future.estimate()
    assert final.complete
    assert final.values["conditional_phase_rad"] == \
        result.conditional_phase_rad
    assert final.values["visibility"] == result.visibility
    assert final.values["control_fidelity"] == result.control_fidelity


def test_summary_labels_registers():
    with Session() as session:
        future = session.submit_experiment("bell", targets=((0, 1), (1, 2)),
                                           n_rounds=4, bases=("ZZ",))
        text = future.summary()
    assert "q0-1:" in text and "q1-2:" in text


# -- registry-driven backend parity ------------------------------------------


def test_fast_params_cover_every_registered_experiment():
    """A new experiment cannot ship without joining the parity suite."""
    assert set(FAST_PARAMS) == set(REGISTRY.names())


def _canonical_jobs(backend: str, name: str):
    targets, params = FAST_PARAMS[name]
    with Session(backend=backend, workers=2, seed=11) as session:
        future = session.submit_experiment(name, targets=targets, **params)
        for _ in future.stream(fit=False):
            pass
        jobs = [f.result() for f in future.futures]
    return [(job.label, job.seed,
             np.asarray(job.averages).tobytes(),
             None if job.joint_counts is None
             else np.asarray(job.joint_counts).tobytes(),
             job.s_grounds, job.s_exciteds,
             job.s_ground, job.s_excited) for job in jobs]


@pytest.mark.parametrize("name", sorted(FAST_PARAMS))
def test_experiment_deterministic_on_serial(name):
    assert _canonical_jobs("serial", name) == _canonical_jobs("serial", name)


@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
@pytest.mark.parametrize("name", sorted(FAST_PARAMS))
def test_experiment_parity_across_backends(name, backend):
    """Every registered experiment is bit-identical on every backend."""
    assert _canonical_jobs("serial", name) == _canonical_jobs(backend, name)


# -- scoped draining under concurrent pair sweeps ----------------------------


def test_concurrent_pair_sweeps_keep_their_own_streams():
    """Two register experiments on one service: interleaved scoped
    streams never steal each other's jobs, and results match solo runs."""
    with ExperimentService(backend="serial") as service:
        a = Session(service=service, seed=1)
        b = Session(service=service, seed=2)
        fut_a = a.submit_experiment("bell", targets=((0, 1),), n_rounds=4)
        fut_b = b.submit_experiment("bell", targets=((1, 2),), n_rounds=4)
        stream_a = fut_a.stream(fit=False)
        stream_b = fut_b.stream(fit=False)
        seen_a, seen_b = [], []
        for _ in range(3):  # interleave the two drains
            seen_a.append(next(stream_a)[0])
            seen_b.append(next(stream_b)[0])
        res_a, res_b = fut_a.result(), fut_b.result()
    assert [j.label for j in seen_a] == [j.label for j in fut_a.sweep.jobs]
    assert [j.label for j in seen_b] == [j.label for j in fut_b.sweep.jobs]
    assert all("q0-1" in j.label for j in seen_a)
    assert all("q1-2" in j.label for j in seen_b)

    # Sharing the service changed nothing: a solo run reproduces A's
    # results exactly, and both futures analyzed complete sweeps.
    with Session(seed=1) as solo:
        solo_a = solo.run("bell", targets=((0, 1),), n_rounds=4)
    assert solo_a.correlations == res_a.correlations
    assert solo_a.fidelity == res_a.fidelity
    assert res_a.fidelity is not None and res_b.fidelity is not None
