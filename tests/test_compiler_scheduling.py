"""Tests for ASAP scheduling into time points."""

import pytest

from repro.compiler import QuantumProgram, decompose, schedule
from repro.utils.errors import ConfigurationError


def points_for(build, qubits=(2,), **kwargs):
    p = QuantumProgram("t", qubits=qubits)
    k = p.new_kernel("k")
    build(k)
    return schedule(decompose(k.ops), **kwargs)


def test_allxy_round_structure():
    """prepz; g1; g2; measure -> QNopReg point with g1, then Wait 4 with g2,
    then Wait 4 with MPG/MD — exactly Algorithm 3's shape."""
    pts = points_for(lambda k: k.prepz(2).i(2).i(2).measure(2))
    assert len(pts) == 3
    assert pts[0].is_register_wait
    assert [op.name for op in pts[0].events] == ["I"]
    assert pts[1].interval_cycles == 4
    assert [op.name for op in pts[1].events] == ["I"]
    assert pts[2].interval_cycles == 4
    assert pts[2].events[0].kind.name == "MEASURE"


def test_gate_slot_configurable():
    pts = points_for(lambda k: k.prepz(2).x(2).x(2), gate_slot_cycles=8)
    assert pts[1].interval_cycles == 8


def test_parallel_ops_share_point():
    pts = points_for(lambda k: k.prepz(0).x(0).x(1), qubits=(0, 1))
    # Both gates start at cycle 0 -> same (register) point.
    assert len(pts) == 1
    assert len(pts[0].events) == 2


def test_serial_on_same_qubit():
    pts = points_for(lambda k: k.prepz(0).x(0).y(0), qubits=(0,))
    assert len(pts) == 2


def test_explicit_wait_shifts_start():
    pts = points_for(lambda k: k.prepz(2).x(2).wait(100, 2).x(2))
    # Second gate at cycle 4 + 100.
    assert pts[1].interval_cycles == 104


def test_measure_occupies_duration():
    pts = points_for(lambda k: k.prepz(2).measure(2).x(2))
    # Gate after measurement waits the full 300-cycle window.
    assert pts[1].interval_cycles == 300


def test_measure_duration_override():
    pts = points_for(lambda k: k.prepz(2).measure(2, duration_cycles=100).x(2))
    assert pts[1].interval_cycles == 100


def test_kernel_without_prepz_gets_initial_point():
    pts = points_for(lambda k: k.x(2))
    assert len(pts) == 1
    assert pts[0].interval_cycles == 1  # minimal on-grid interval


def test_two_prepz_in_sequence():
    pts = points_for(lambda k: k.prepz(2).prepz(2).x(2))
    assert pts[0].is_register_wait
    assert pts[1].is_register_wait
    assert [op.name for op in pts[1].events] == ["X180"]


def test_composite_rejected():
    p = QuantumProgram("t", qubits=(0, 1))
    k = p.new_kernel("k")
    k.cnot(0, 1)
    with pytest.raises(ConfigurationError):
        schedule(k.ops)


def test_cnot_schedule_matches_algorithm2_shape():
    """mY90; CZ; Y90 with gate slots: intervals 4 then 4 (our CZ slot is
    one gate slot; Algorithm 2 uses Wait 8 for its 40 ns flux pulse)."""
    pts = points_for(lambda k: k.prepz(1).cnot(0, 1), qubits=(0, 1))
    assert [op.name for op in pts[0].events] == ["mY90"]
    assert [op.name for op in pts[1].events] == ["CZ"]
    assert [op.name for op in pts[2].events] == ["Y90"]
