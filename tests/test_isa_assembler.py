"""Tests for the two-pass assembler."""

import pytest

from repro.isa import (
    Apply,
    Bne,
    Halt,
    Load,
    Md,
    Measure,
    Movi,
    Mpg,
    Pulse,
    QCall,
    Store,
    Wait,
    WaitReg,
    assemble,
)
from repro.utils.errors import AssemblyError

ALLXY_SNIPPET = """
    mov r15, 40000   # 200 us
    mov r1, 0        # loop counter
    mov r2, 25600    # number of averages

Outer_Loop:
    QNopReg r15      # Identity, Identity
    Pulse {q2}, I
    Wait 4
    Pulse {q2}, I
    Wait 4
    MPG {q2}, 300
    MD {q2}
    addi r1, r1, 1
    bne r1, r2, Outer_Loop
    halt
"""


def test_assembles_algorithm3_snippet():
    prog = assemble(ALLXY_SNIPPET)
    assert isinstance(prog.instructions[0], Movi)
    assert prog.instructions[0].imm == 40000
    assert prog.labels["outer_loop"] == 3
    assert isinstance(prog.instructions[3], WaitReg)
    assert isinstance(prog.instructions[4], Pulse)
    assert prog.instructions[4].pairs == (((2,), "I"),)
    assert isinstance(prog.instructions[8], Mpg)
    assert prog.instructions[8].duration == 300
    assert isinstance(prog.instructions[9], Md)
    assert prog.instructions[9].rd is None
    bne = prog.instructions[-2]
    assert isinstance(bne, Bne)
    assert bne.target == "outer_loop"
    assert isinstance(prog.instructions[-1], Halt)


def test_pulse_general_form():
    prog = assemble("Pulse (q0, X180), ({q1, q2}, Y90)")
    pulse = prog.instructions[0]
    assert pulse.pairs == (((0,), "X180"), ((1, 2), "Y90"))


def test_pulse_multi_qubit_sugar():
    prog = assemble("Pulse {q0, q1}, CZ")
    assert prog.instructions[0].pairs == (((0, 1), "CZ"),)


def test_md_with_register():
    prog = assemble("MD {q0}, r7")
    assert prog.instructions[0].rd == 7


def test_md_with_dollar_register():
    prog = assemble("MD {q0}, $r7")
    assert prog.instructions[0].rd == 7


def test_apply_and_measure():
    prog = assemble("Apply X180, q0\nMeasure q0, r7")
    assert prog.instructions[0] == Apply(op="X180", qubit=0)
    assert prog.instructions[1] == Measure(qubit=0, rd=7)


def test_load_store_bracket_syntax():
    prog = assemble("load r9, r3[0]\nstore r9, r3[1]")
    assert prog.instructions[0] == Load(rd=9, rs=3, offset=0)
    assert prog.instructions[1] == Store(rt=9, rs=3, offset=1)


def test_mnemonics_case_insensitive():
    prog = assemble("WAIT 4\nwait 4\nWait 4")
    assert all(isinstance(i, Wait) for i in prog.instructions)


def test_label_case_insensitive_reference():
    prog = assemble("Loop:\nnop\nbne r1, r2, LOOP")
    assert prog.instructions[1].target == "loop"


def test_qcall_requires_registration():
    with pytest.raises(AssemblyError):
        assemble("CNOT q0, q1")
    prog = assemble("CNOT q0, q1", uprogs=["CNOT"])
    assert prog.instructions[0] == QCall(uprog="CNOT", qubits=(0, 1))
    assert prog.uprog_names == ["CNOT"]


def test_undefined_label_raises_with_line():
    with pytest.raises(AssemblyError) as err:
        assemble("nop\nbne r1, r2, nowhere")
    assert err.value.line == 2


def test_duplicate_label_rejected():
    with pytest.raises(AssemblyError):
        assemble("a:\nnop\na:\nnop")


def test_unknown_mnemonic_rejected():
    with pytest.raises(AssemblyError):
        assemble("frobnicate r1")


def test_unknown_operation_rejected():
    with pytest.raises(AssemblyError):
        assemble("Pulse {q0}, NOSUCH")


def test_operand_count_checked():
    with pytest.raises(AssemblyError):
        assemble("mov r1")
    with pytest.raises(AssemblyError):
        assemble("add r1, r2")


def test_out_of_range_immediate_reports_line():
    with pytest.raises(AssemblyError) as err:
        assemble("nop\nmov r1, 99999999")
    assert err.value.line == 2


def test_label_on_same_line_as_instruction():
    prog = assemble("start: nop\njmp start")
    assert prog.labels["start"] == 0


def test_end_label():
    prog = assemble("beq r0, r0, end\nnop\nend:")
    assert prog.labels["end"] == 2


def test_comment_only_lines_ignored():
    prog = assemble("# a comment\n\n   # another\nnop")
    assert len(prog) == 1


def test_wait_zero_rejected():
    with pytest.raises(AssemblyError):
        assemble("Wait 0")


def test_hex_immediates():
    prog = assemble("mov r1, 0x10")
    assert prog.instructions[0].imm == 16
