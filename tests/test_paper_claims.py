"""Conformance tests for the paper's explicit quantitative claims.

Each test quotes the claim it verifies, making the suite double as a
checklist of reproduced statements.
"""

import numpy as np
import pytest

from repro.baseline import allxy_spec, waveform_memory_bytes
from repro.core import MachineConfig, QuMA
from repro.pulse import build_single_qubit_lut, ssb_phase
from repro.qubit import allclose_up_to_phase, integrate_envelope, ry
from repro.utils.units import CYCLE_NS, cycles_to_ns


def test_claim_cycle_time():
    """'Here and throughout the rest of the paper, a cycle time of 5 ns
    is used.' (Section 5.2)"""
    assert CYCLE_NS == 5


def test_claim_allxy_lut_420_bytes():
    """'only consumes the memory for 7 x 2 x 20 ns x Rs samples (in total
    420 Bytes)' (Section 5.1.1)"""
    assert build_single_qubit_lut().memory_bytes() == 420.0


def test_claim_waveform_method_2520_bytes():
    """'21 x 2 x 2 x 20 ns x Rs samples (in total 2520 Bytes)'
    (Section 5.1.1)"""
    assert waveform_memory_bytes(allxy_spec()) == 2520.0


def test_claim_5ns_shift_x_becomes_y():
    """'applying the modulation envelope of an x rotation 5 ns later will
    produce a y rotation instead' (Section 4.2.3)"""
    lut = build_single_qubit_lut()
    u = integrate_envelope(lut.lookup(2).samples,  # the calibrated X90
                           0.33, phase0=ssb_phase(-50e6, 5))
    assert allclose_up_to_phase(u, ry(np.pi / 2), atol=1e-5)


def test_claim_ctpg_delay_80ns():
    """'The implemented codeword-triggered pulse generation unit has a
    fixed delay of 80 ns from the codeword trigger to the output pulse.'
    (Section 7.1)"""
    machine = QuMA(MachineConfig(qubits=(2,)))
    assert machine.ctpgs["ctpg2"].fixed_delay_ns == 80


def test_claim_back_to_back_via_20ns_triggers():
    """'by issuing the codeword triggers for the two gates with an
    interval of 20 ns, the pulses for the two gates can be played out
    exactly back to back' (Section 5.1.1)"""
    machine = QuMA(MachineConfig(qubits=(2,)))
    machine.load("Wait 4\nPulse {q2}, X90\nWait 4\nPulse {q2}, X90\nhalt")
    machine.run()
    a, b = (r.time for r in machine.trace.filter(kind="pulse_start"))
    assert b - a == 20


def test_claim_allxy_init_wait_200us():
    """Algorithm 3: 'mov r15, 40000  # 200 us'"""
    assert cycles_to_ns(40000) == 200_000


def test_claim_measurement_pulse_300_cycles():
    """Algorithm 3: 'MPG {q2}, 300' — a 1.5 us measurement pulse."""
    assert cycles_to_ns(300) == 1500


def test_claim_21_pairs_first5_next12_final4():
    """'ideally, the first 5 return the qubit to |0>, the next 12 drive it
    to [the equator] and the final 4 drive it to |1>' (Section 4.1)"""
    from repro.experiments import ALLXY_PAIRS, allxy_ideal_staircase

    assert len(ALLXY_PAIRS) == 21
    stair = allxy_ideal_staircase(points_per_pair=1)
    assert np.all(stair[:5] == 0.0)
    assert np.all(stair[5:17] == 0.5)
    assert np.all(stair[17:] == 1.0)


def test_claim_mdu_latency_under_1us():
    """'achieving a short latency < 1 us which enables real-time feedback
    control' (Section 5.1.2) — beyond the integration window."""
    machine = QuMA(MachineConfig(qubits=(2,)))
    mdu = machine.mdus[2]
    assert mdu.latency_ns(1500) - 1500 < 1000


def test_claim_cnot_decomposition():
    """'CNOT_{c,t} = Ry(pi/2)_t . CZ . Ry(-pi/2)_t' (Section 5.3.2)"""
    from repro.qubit import CNOT, CZ, I2

    composed = (np.kron(I2, ry(np.pi / 2)) @ CZ @ np.kron(I2, ry(-np.pi / 2)))
    assert allclose_up_to_phase(composed, CNOT)


def test_claim_z_equals_x_after_y():
    """'a Z gate can be decomposed into a Y gate followed by an X gate
    since Z = X . Y' (Section 5.3.2)"""
    from repro.qubit import PAULI_X, PAULI_Y, PAULI_Z

    assert allclose_up_to_phase(PAULI_X @ PAULI_Y, PAULI_Z)


def test_claim_single_binary_controls_multiple_qubits():
    """'(i) only one binary executable is required for controlling
    multiple qubits' (Section 6)"""
    machine = QuMA(MachineConfig(qubits=(0, 1, 2)))
    program = machine.assemble("""
        Wait 4
        Pulse ({q0}, X180), ({q1}, Y90), ({q2}, X90)
        Wait 4
        MPG {q0, q1, q2}, 300
        MD {q0, q1, q2}
        halt
    """)
    blob = program.to_binary()  # ONE binary
    machine.load(blob)
    result = machine.run()
    assert result.completed
    assert len(machine.trace.filter(kind="pulse_start")) == 3


def test_claim_queue_decoupling():
    """'It allows that events are triggered at deterministic and precise
    timing while the instructions are executed with non-deterministic
    timing.' (Section 1)"""
    def schedule(jitter):
        machine = QuMA(MachineConfig(qubits=(2,), classical_jitter_ns=jitter,
                                     seed=3))
        machine.load("Wait 400\nPulse {q2}, X90\nWait 4\nPulse {q2}, Y90\nhalt")
        machine.run()
        td0 = machine.tcu.td_to_ns(0)
        return [r.time - td0 for r in machine.trace.filter(kind="pulse_start")]

    assert schedule(0) == schedule(50)
