"""Property-based round-trip tests for the assembler/encoder stack."""

from hypothesis import given, settings, strategies as st

from repro.isa import (
    Addi,
    Apply,
    Halt,
    Load,
    Md,
    Measure,
    Movi,
    Mpg,
    Nop,
    Pulse,
    Program,
    Store,
    Wait,
    WaitReg,
    assemble,
    disassemble_program,
)
from repro.isa.encoding import encode_program

regs = st.integers(min_value=0, max_value=31)
qubits = st.integers(min_value=0, max_value=9)
ops = st.sampled_from(["I", "X180", "X90", "mX90", "Y180", "Y90", "mY90", "CZ"])

non_branch = st.one_of(
    st.builds(Nop),
    st.builds(Movi, rd=regs, imm=st.integers(-(1 << 20), (1 << 20) - 1)),
    st.builds(Addi, rd=regs, rs=regs,
              imm=st.integers(-(1 << 15), (1 << 15) - 1)),
    st.builds(Load, rd=regs, rs=regs,
              offset=st.integers(-(1 << 15), (1 << 15) - 1)),
    st.builds(Store, rt=regs, rs=regs,
              offset=st.integers(-(1 << 15), (1 << 15) - 1)),
    st.builds(Wait, interval=st.integers(1, (1 << 20) - 1)),
    st.builds(WaitReg, rs=regs),
    st.builds(Apply, op=ops.filter(lambda o: o != "CZ"), qubit=qubits),
    st.builds(Measure, qubit=qubits, rd=st.one_of(st.none(), regs)),
    st.builds(Mpg,
              qubits=st.sets(qubits, min_size=1, max_size=4).map(tuple),
              duration=st.integers(1, (1 << 16) - 1)),
    st.builds(Md,
              qubits=st.sets(qubits, min_size=1, max_size=4).map(tuple),
              rd=st.one_of(st.none(), regs)),
    st.builds(
        Pulse,
        pairs=st.lists(
            st.tuples(st.sets(qubits, min_size=1, max_size=3).map(tuple), ops),
            min_size=1, max_size=3).map(tuple)),
)


@settings(max_examples=60, deadline=None)
@given(instrs=st.lists(non_branch, min_size=1, max_size=20))
def test_disassemble_reassemble_fixed_point(instrs):
    """disassemble -> assemble is the identity on encodings."""
    program = Program(instructions=list(instrs) + [Halt()])
    text = disassemble_program(program)
    back = assemble(text)
    assert encode_program(back) == encode_program(program)


@settings(max_examples=60, deadline=None)
@given(instrs=st.lists(non_branch, min_size=1, max_size=20))
def test_binary_roundtrip_preserves_instructions(instrs):
    program = Program(instructions=list(instrs) + [Halt()])
    back = Program.from_binary(program.to_binary(), op_table=program.op_table)
    assert back.instructions == program.instructions


@settings(max_examples=40, deadline=None)
@given(
    instrs=st.lists(non_branch, min_size=2, max_size=12),
    data=st.data(),
)
def test_roundtrip_with_random_branches(instrs, data):
    """Programs with branches to random labels survive binary round trips
    (same instruction count, same re-encoded binary)."""
    from repro.isa import Bne

    n = len(instrs)
    target_index = data.draw(st.integers(min_value=0, max_value=n))
    program = Program(
        instructions=list(instrs)
        + [Bne(rs=1, rt=2, target="spot"), Halt()],
        labels={"spot": target_index},
    )
    blob = program.to_binary()
    back = Program.from_binary(blob, op_table=program.op_table)
    assert len(back.instructions) == len(program.instructions)
    assert back.to_binary() == blob
    # The reconstructed branch resolves to the same instruction index.
    bne_back = back.instructions[-2]
    assert back.labels[bne_back.target] == target_index


@settings(max_examples=60, deadline=None)
@given(instrs=st.lists(non_branch, min_size=1, max_size=16))
def test_word_size_matches_encoding(instrs):
    program = Program(instructions=list(instrs))
    assert program.word_size() == len(encode_program(program))
    assert len(program.to_binary()) == 4 * program.word_size()
