"""Unit tests for ``repro.obs``: spans, metrics, exporters, views.

The subsystem contracts under test:

* span recording and the cross-process rebase rule (queue-wait span
  prepended, worker-relative offsets anchored at ``resolved_at -
  total_s``, clamped so the queue never goes negative);
* metrics registry snapshot/merge semantics (counters and gauges sum
  across workers, histogram reservoirs pool with exact count/total);
* Chrome trace-event export (schema validity, both service-span and
  simulator timelines) and the metrics artifact round trip;
* typed stats views staying fully Mapping-compatible.
"""

import json

import pytest

from repro.obs import (
    JOB_STAGES,
    STAGE_COMPILE,
    STAGE_EXECUTE,
    STAGE_QUEUE_WAIT,
    BackendStats,
    JobTelemetry,
    MetricsRegistry,
    RouteStats,
    ServiceStats,
    Span,
    SpanRecorder,
    chrome_trace_events,
    load_metrics_artifact,
    percentile,
    rebase_job_spans,
    summarize_values,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_artifact,
)
from repro.sim.tracing import TraceRecord


# -- spans -------------------------------------------------------------------


def test_span_duration_and_shift():
    span = Span("compile", 1.0, 1.5, meta={"cache_hit": True})
    assert span.duration_s == pytest.approx(0.5)
    moved = span.shifted(10.0)
    assert (moved.start_s, moved.end_s) == (11.0, 11.5)
    assert moved.name == "compile"
    assert moved.meta == {"cache_hit": True}
    assert span.start_s == 1.0  # original untouched (frozen)


def test_span_recorder_is_epoch_relative():
    rec = SpanRecorder(epoch=100.0)
    rec.record("compile", 100.25, 100.75, cache_hit=False)
    with rec.span("execute"):
        pass
    assert rec.spans[0].start_s == pytest.approx(0.25)
    assert rec.spans[0].end_s == pytest.approx(0.75)
    assert rec.spans[0].meta == {"cache_hit": False}
    assert rec.spans[1].name == "execute"
    assert rec.spans[1].duration_s >= 0.0


def test_rebase_prepends_queue_wait_and_anchors_epoch():
    worker_spans = (Span("compile", 0.0, 0.1), Span("execute", 0.1, 0.5))
    # Submitted at t=10, resolved at t=11, job took 0.5 s on the worker:
    # the job started at 10.5 on the submitter's clock.
    rebased = rebase_job_spans(worker_spans, submitted_at=10.0,
                               resolved_at=11.0, total_s=0.5)
    assert rebased[0].name == STAGE_QUEUE_WAIT
    assert rebased[0].category == "service"
    assert (rebased[0].start_s, rebased[0].end_s) == (10.0, 10.5)
    assert rebased[1].start_s == pytest.approx(10.5)
    assert rebased[2].end_s == pytest.approx(11.0)


def test_rebase_clamps_negative_queue_wait():
    # Worker wall time exceeds submit->resolve (serial backends resolve
    # the future before base.submit even returns): queue-wait clamps to
    # zero instead of going negative.
    rebased = rebase_job_spans((Span("execute", 0.0, 2.0),),
                               submitted_at=10.0, resolved_at=11.0,
                               total_s=2.0)
    assert rebased[0].duration_s == 0.0
    assert rebased[1].start_s == pytest.approx(10.0)


def test_stage_taxonomy_is_lifecycle_ordered():
    assert JOB_STAGES[0] == STAGE_QUEUE_WAIT
    assert STAGE_COMPILE in JOB_STAGES and STAGE_EXECUTE in JOB_STAGES


# -- metrics -----------------------------------------------------------------


def test_percentile_and_summarize_values():
    assert percentile([], 50) is None
    assert percentile([1.0, 2.0, 3.0], 50) == pytest.approx(2.0)
    summary = summarize_values([1.0, 2.0, 3.0, 4.0])
    assert summary["count"] == 4
    assert summary["total"] == pytest.approx(10.0)
    assert summary["mean"] == pytest.approx(2.5)
    assert summary["max"] == pytest.approx(4.0)
    empty = summarize_values([])
    assert empty["count"] == 0 and empty["p50"] is None


def test_registry_instruments_are_get_or_create():
    reg = MetricsRegistry()
    reg.counter("jobs").inc()
    reg.counter("jobs").inc(2)
    reg.gauge("depth").set(3)
    reg.gauge("depth").max(1)  # watermark: lower value does not win
    reg.histogram("lat").observe(0.5)
    snap = reg.snapshot()
    assert snap["counters"]["jobs"] == 3
    assert snap["gauges"]["depth"] == 3.0
    assert snap["histograms"]["lat"]["count"] == 1
    assert snap["histograms"]["lat"]["samples"] == [0.5]


def test_histogram_reservoir_is_bounded_but_stats_exact():
    reg = MetricsRegistry(max_samples=8)
    h = reg.histogram("lat")
    for i in range(100):
        h.observe(float(i))
    assert h.count == 100
    assert h.total == pytest.approx(sum(range(100)))
    assert h.max == 99.0
    assert len(h.samples) == 8
    summary = h.summary()
    assert summary["count"] == 100 and summary["max"] == 99.0


def test_merge_sums_counters_and_gauges_pools_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("jobs").inc(3)
    b.counter("jobs").inc(4)
    b.counter("only_b").inc()
    a.gauge("pool.idle").set(2)
    b.gauge("pool.idle").set(1)
    a.histogram("lat").observe(1.0)
    b.histogram("lat").observe(3.0)
    merged = MetricsRegistry.merge([a.snapshot(), b.snapshot()])
    assert merged["counters"] == {"jobs": 7, "only_b": 1}
    assert merged["gauges"]["pool.idle"] == 3.0
    assert merged["histograms"]["lat"]["count"] == 2
    assert merged["histograms"]["lat"]["total"] == pytest.approx(4.0)
    assert merged["histograms"]["lat"]["min"] == 1.0
    assert merged["histograms"]["lat"]["max"] == 3.0
    assert sorted(merged["histograms"]["lat"]["samples"]) == [1.0, 3.0]


def test_summarize_snapshot_reduces_reservoirs():
    reg = MetricsRegistry()
    reg.histogram("lat").observe(1.0)
    reg.histogram("lat").observe(2.0)
    out = MetricsRegistry.summarize_snapshot(reg.snapshot())
    assert out["histograms"]["lat"]["count"] == 2
    assert out["histograms"]["lat"]["p50"] == pytest.approx(1.5)
    assert "samples" not in out["histograms"]["lat"]


# -- chrome trace export -----------------------------------------------------


class _FakeJob:
    """JobResult-shaped: label + telemetry is all the exporter reads."""

    def __init__(self, label, telemetry):
        self.label = label
        self.telemetry = telemetry


def _telemetry_job(label="bell q0-1", with_sim=False):
    spans = rebase_job_spans(
        (Span("compile", 0.0, 0.1), Span("execute", 0.1, 0.4)),
        submitted_at=5.0, resolved_at=5.5, total_s=0.4)
    sim = (TraceRecord(10, "ctpg0", "pulse_start", {"op": "x"}),
           TraceRecord(30, "mdu0", "measure", {"qubit": 0}),
           TraceRecord(40, "ctpg0", "pulse_start", {"op": "y90"}),
           ) if with_sim else ()
    return _FakeJob(label, JobTelemetry(spans=spans, worker="pid:1",
                                        sim_trace=sim, rebased=True))


def test_chrome_trace_events_cover_both_timelines():
    events = chrome_trace_events([_telemetry_job(with_sim=True),
                                  _telemetry_job(label="j2")])
    cats = {e.get("cat") for e in events if e["ph"] != "M"}
    assert cats == {"service", "sim"}
    # Service spans normalize the earliest start to ts=0.
    service_ts = [e["ts"] for e in events
                  if e["ph"] == "X" and e["cat"] == "service"]
    assert min(service_ts) == 0.0
    # Sim events keep simulation time (ns -> us) and per-unit threads.
    sim = [e for e in events if e.get("cat") == "sim"]
    assert {e["name"] for e in sim} == {"pulse_start", "measure"}
    assert all(e["ph"] == "i" for e in sim)
    by_unit = {e["args"]["unit"]: e["tid"] for e in sim}
    assert by_unit["ctpg0"] != by_unit["mdu0"]


def test_jobs_without_telemetry_are_skipped():
    assert chrome_trace_events([_FakeJob("plain", None)]) == \
        [{"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
          "args": {"name": "service"}}]


def test_write_and_validate_chrome_trace(tmp_path):
    path = str(tmp_path / "trace.json")
    n = write_chrome_trace(path, [_telemetry_job(with_sim=True)])
    assert validate_chrome_trace(path) == n
    with open(path) as f:
        data = json.load(f)
    assert validate_chrome_trace(data) == n


@pytest.mark.parametrize("bad", [
    {"wrong_key": []},
    {"traceEvents": {}},
    {"traceEvents": [{"ph": "X", "name": "s", "pid": 1, "tid": 1}]},
    {"traceEvents": [{"ph": "X", "name": "s", "pid": 1, "tid": 1,
                      "ts": 0.0, "dur": -1.0}]},
    {"traceEvents": [{"ph": "Z", "name": "s", "pid": 1, "tid": 1,
                      "ts": 0.0}]},
    {"traceEvents": [{"ph": "i", "name": "s", "pid": 1, "tid": 1,
                      "ts": "soon"}]},
    {"traceEvents": [{"ph": "i", "pid": 1, "tid": 1, "ts": 0.0}]},
])
def test_validator_rejects_malformed_traces(bad):
    with pytest.raises(ValueError):
        validate_chrome_trace(bad)


# -- metrics artifact --------------------------------------------------------


def test_metrics_artifact_round_trip(tmp_path):
    path = str(tmp_path / "metrics.json")
    reg = MetricsRegistry()
    reg.counter("service.jobs").inc(2)
    write_metrics_artifact(path, {"service": reg.summary()},
                           stage_stats={"compile_s": summarize_values([0.1])},
                           context={"experiment": "bell"})
    data = load_metrics_artifact(path)
    assert data["metrics"]["service"]["counters"]["service.jobs"] == 2
    assert data["stage_stats"]["compile_s"]["count"] == 1
    assert data["context"]["experiment"] == "bell"


def test_load_rejects_foreign_json(tmp_path):
    path = str(tmp_path / "other.json")
    with open(path, "w") as f:
        json.dump({"hello": "world"}, f)
    with pytest.raises(ValueError):
        load_metrics_artifact(path)


# -- typed views -------------------------------------------------------------


def test_backend_stats_is_mapping_and_named():
    stats = BackendStats({"backend": "serial", "submitted": 3,
                          "failed": 0, "pending": 1})
    assert stats["submitted"] == 3  # dict-style indexing keeps working
    assert stats.submitted == 3
    assert stats.backend == "serial"
    assert set(stats) == {"backend", "submitted", "failed", "pending"}
    assert len(stats) == 4


def test_route_stats_wraps_each_route():
    routes = RouteStats({"quma": {"backend": "serial", "submitted": 2,
                                  "failed": 0, "pending": 0}})
    assert routes["quma"]["submitted"] == 2
    assert routes.route("quma").submitted == 2
    assert routes.routes == ("quma",)


def test_service_stats_as_dict_is_plain_json():
    stats = ServiceStats({
        "backend": "serial", "submitted": 1,
        "routes": RouteStats({"quma": {"backend": "serial", "submitted": 1,
                                       "failed": 0, "pending": 0}}),
        "cache": {}, "pool": {}, "replay_cache": {},
        "metrics": {"service": {"counters": {}}},
    })
    plain = stats.as_dict()
    assert isinstance(plain["routes"], dict)
    assert not isinstance(plain["routes"], RouteStats)
    json.dumps(plain)  # fully serializable
    assert stats.routes.route("quma").backend == "serial"
    assert stats.metrics == {"service": {"counters": {}}}
