"""Property-based tests for the quantum-state substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.qubit import DensityMatrix, decoherence_kraus, su2_rotation
from repro.qubit.noise import amplitude_damping_kraus, phase_damping_kraus

angles = st.floats(min_value=-2 * np.pi, max_value=2 * np.pi,
                   allow_nan=False, allow_infinity=False)
axes = st.tuples(
    st.floats(min_value=-1, max_value=1, allow_nan=False),
    st.floats(min_value=-1, max_value=1, allow_nan=False),
    st.floats(min_value=-1, max_value=1, allow_nan=False),
).filter(lambda n: n[0] ** 2 + n[1] ** 2 + n[2] ** 2 > 1e-6)


@settings(max_examples=60, deadline=None)
@given(axis=axes, theta=angles)
def test_su2_rotation_is_unitary(axis, theta):
    u = su2_rotation(*axis, theta)
    assert np.allclose(u @ u.conj().T, np.eye(2), atol=1e-10)
    assert abs(np.linalg.det(u)) - 1 < 1e-10


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(st.tuples(axes, angles), min_size=1, max_size=10))
def test_unitary_sequences_preserve_physicality(ops):
    dm = DensityMatrix.ground(1)
    for axis, theta in ops:
        dm.apply_unitary(su2_rotation(*axis, theta), (0,))
    assert dm.is_physical()
    assert 0.0 <= dm.prob_one(0) <= 1.0
    assert abs(dm.purity() - 1.0) < 1e-8  # unitaries keep the state pure


@settings(max_examples=40, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5000.0, allow_nan=False),
            axes,
            angles,
        ),
        min_size=1, max_size=8),
    t1=st.floats(min_value=1000.0, max_value=50000.0, allow_nan=False),
)
def test_noisy_evolution_stays_physical(steps, t1):
    t2 = 1.2 * t1  # valid: T2 <= 2*T1
    dm = DensityMatrix.ground(1)
    for dt, axis, theta in steps:
        dm.apply_unitary(su2_rotation(*axis, theta), (0,))
        dm.apply_kraus(decoherence_kraus(dt, t1, t2), 0)
    assert dm.is_physical()
    assert dm.purity() <= 1.0 + 1e-9
    assert abs(dm.trace() - 1.0) < 1e-9


@settings(max_examples=60, deadline=None)
@given(gamma=st.floats(min_value=0, max_value=1, allow_nan=False),
       lam=st.floats(min_value=0, max_value=1, allow_nan=False))
def test_channel_completeness_property(gamma, lam):
    for ops in (amplitude_damping_kraus(gamma), phase_damping_kraus(lam)):
        total = sum(k.conj().T @ k for k in ops)
        assert np.allclose(total, np.eye(2), atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(dt=st.floats(min_value=0, max_value=100000, allow_nan=False),
       t1=st.floats(min_value=100, max_value=100000, allow_nan=False),
       ratio=st.floats(min_value=0.05, max_value=2.0, allow_nan=False))
def test_decoherence_kraus_complete_for_valid_params(dt, t1, ratio):
    t2 = ratio * t1
    ops = decoherence_kraus(dt, t1, t2)
    total = sum(k.conj().T @ k for k in ops)
    assert np.allclose(total, np.eye(2), atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(theta=angles, dt=st.floats(min_value=0, max_value=20000,
                                  allow_nan=False))
def test_population_decays_toward_ground(theta, dt):
    """After any preparation, T1 decay never increases P(|1>)."""
    dm = DensityMatrix.ground(1)
    dm.apply_unitary(su2_rotation(1, 0, 0, theta), (0,))
    before = dm.prob_one(0)
    dm.apply_kraus(decoherence_kraus(dt, 10000.0, 10000.0), 0)
    assert dm.prob_one(0) <= before + 1e-12


@settings(max_examples=30, deadline=None)
@given(theta=angles)
def test_projection_probabilities_consistent(theta):
    dm = DensityMatrix.ground(1)
    dm.apply_unitary(su2_rotation(0, 1, 0, theta), (0,))
    p1 = dm.prob_one(0)
    if p1 > 1e-9:
        clone = dm.copy()
        p = clone.project(0, 1)
        assert abs(p - p1) < 1e-9
        assert clone.prob_one(0) > 1.0 - 1e-9
    if 1.0 - p1 > 1e-9:
        clone = dm.copy()
        p = clone.project(0, 0)
        assert abs(p - (1.0 - p1)) < 1e-9
        assert clone.prob_one(0) < 1e-9


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=4),
    moves=st.data(),
)
def test_multiqubit_operations_preserve_trace(n, moves):
    dm = DensityMatrix.ground(n)
    for _ in range(4):
        q = moves.draw(st.integers(min_value=0, max_value=n - 1))
        theta = moves.draw(angles)
        dm.apply_unitary(su2_rotation(0, 1, 0, theta), (q,))
        dt = moves.draw(st.floats(min_value=0, max_value=1000,
                                  allow_nan=False))
        dm.apply_kraus(decoherence_kraus(dt, 5000.0, 5000.0), q)
    assert abs(dm.trace() - 1.0) < 1e-9
    assert dm.is_physical()
