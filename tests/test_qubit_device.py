"""Tests for the time-ordered quantum device."""

import numpy as np
import pytest

from repro.pulse import PulseCalibration, Waveform, build_single_qubit_lut, square, zeros
from repro.qubit import QuantumDevice, TransmonParams
from repro.utils.errors import ConfigurationError

CAL = PulseCalibration()
LUT = build_single_qubit_lut(CAL)


def make_device(n=1, **kwargs):
    params = [TransmonParams(kappa=CAL.kappa) for _ in range(n)]
    return QuantumDevice(params, **kwargs)


def test_initial_state_ground():
    dev = make_device()
    assert dev.prob_one(0) == pytest.approx(0.0)


def test_x180_at_ssb_grid_inverts():
    dev = make_device()
    dev.play_waveform((0,), LUT.lookup(1), start_ns=100)  # 100 ns = 5 SSB periods
    assert dev.prob_one(0) == pytest.approx(1.0, abs=1e-4)


def test_x180_5ns_off_grid_still_inverts():
    # A y rotation also takes |0> to |1>; the phase matters for axes,
    # not for full flips from the pole.
    dev = make_device()
    dev.play_waveform((0,), LUT.lookup(1), start_ns=105)
    assert dev.prob_one(0) == pytest.approx(1.0, abs=1e-4)


def test_x90_then_x90_on_grid_inverts():
    dev = make_device()
    dev.play_waveform((0,), LUT.lookup(2), start_ns=0)
    dev.play_waveform((0,), LUT.lookup(2), start_ns=20)
    assert dev.prob_one(0) == pytest.approx(1.0, abs=1e-3)


def test_x90_then_x90_with_5ns_slip_fails_to_invert():
    """The paper's timing-sensitivity argument as observable physics: the
    second pulse slipping 5 ns becomes a y90, leaving p1 = 0.5."""
    dev = make_device()
    dev.play_waveform((0,), LUT.lookup(2), start_ns=0)
    dev.play_waveform((0,), LUT.lookup(2), start_ns=25)
    assert dev.prob_one(0) == pytest.approx(0.5, abs=1e-2)


def test_idle_decay_to_ground():
    dev = make_device()
    dev.play_waveform((0,), LUT.lookup(1), start_ns=0)
    t1 = dev.params[0].t1_ns
    dev.advance_to(int(20 + t1))
    assert dev.prob_one(0) == pytest.approx(np.exp(-1.0), abs=0.02)


def test_time_cannot_move_backwards():
    dev = make_device()
    dev.advance_to(100)
    with pytest.raises(ValueError):
        dev.advance_to(50)


def test_overlapping_drive_same_qubit_rejected():
    dev = make_device()
    dev.play_waveform((0,), LUT.lookup(1), start_ns=0)
    with pytest.raises(ConfigurationError):
        dev.play_waveform((0,), LUT.lookup(1), start_ns=10)


def test_simultaneous_drive_different_qubits_ok():
    dev = make_device(2)
    dev.play_waveform((0,), LUT.lookup(1), start_ns=0)
    dev.play_waveform((1,), LUT.lookup(1), start_ns=0)
    assert dev.prob_one(0) == pytest.approx(1.0, abs=1e-4)
    assert dev.prob_one(1) == pytest.approx(1.0, abs=1e-4)


def test_identity_pulse_occupies_slot_but_does_nothing():
    dev = make_device()
    dev.play_waveform((0,), LUT.lookup(0), start_ns=0)
    assert dev.prob_one(0) == pytest.approx(0.0)
    with pytest.raises(ConfigurationError):
        dev.play_waveform((0,), LUT.lookup(1), start_ns=10)


def test_cz_waveform_entangles():
    dev = make_device(2)
    flux = Waveform("CZ", square(40, 0.5), meta={"kind": "cz"})
    # Prepare |+>|+> then CZ: creates entanglement.
    dev.play_waveform((0,), LUT.lookup(2), start_ns=0)
    dev.play_waveform((1,), LUT.lookup(2), start_ns=0)
    dev.play_waveform((0, 1), flux, start_ns=20)
    # Purity dips only by the ~60 ns of idle decoherence.
    assert dev.state.purity() == pytest.approx(1.0, abs=1e-2)
    # Reduced states are mixed for an entangled pure state.
    r0 = dev.state.reduced(0)
    purity0 = np.real(np.trace(r0 @ r0))
    assert purity0 < 0.6


def test_cz_waveform_needs_two_qubits():
    dev = make_device(2)
    flux = Waveform("CZ", square(40, 0.5), meta={"kind": "cz"})
    with pytest.raises(ConfigurationError):
        dev.play_waveform((0,), flux, start_ns=0)


def test_measure_project_is_sampled_and_collapses():
    dev = make_device(seed=5)
    dev.play_waveform((0,), LUT.lookup(2), start_ns=0)  # superposition
    out = dev.measure_project(0, t_ns=40)
    assert out in (0, 1)
    assert dev.prob_one(0) == pytest.approx(float(out), abs=1e-6)


def test_measure_statistics():
    counts = 0
    for seed in range(200):
        dev = make_device(seed=seed)
        dev.play_waveform((0,), LUT.lookup(2), start_ns=0)
        counts += dev.measure_project(0, t_ns=40)
    assert 60 < counts < 140


def test_reset():
    dev = make_device()
    dev.play_waveform((0,), LUT.lookup(1), start_ns=0)
    dev.reset()
    assert dev.prob_one(0) == pytest.approx(0.0)
    # busy-until cleared: a pulse at t=now is allowed again.
    dev.play_waveform((0,), LUT.lookup(1), start_ns=dev.now_ns)


def test_cache_used_across_repeats():
    dev = make_device()
    for i in range(5):
        dev.play_waveform((0,), LUT.lookup(1), start_ns=i * 40)
    stats = dev.cache_stats()
    assert stats["misses"] <= 2  # 40 ns spacing -> same SSB phase bucket
    assert stats["hits"] >= 3


def test_empty_device_rejected():
    with pytest.raises(ConfigurationError):
        QuantumDevice([])


def test_zero_waveform_skips_integration():
    dev = make_device()
    dev.play_waveform((0,), Waveform("I", zeros(20)), start_ns=0)
    assert dev.cache_stats()["misses"] == 0
