"""Smoke tests: every example script runs end to end.

Each example is executed in-process (runpy) with small arguments so the
suite guards them against bitrot without dominating the wall clock.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None, capsys=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys=capsys)
    assert "measurement result:  1" in out
    assert "timing violations:   0" in out


def test_allxy_small(capsys):
    out = run_example("allxy.py", argv=["8"], capsys=capsys)
    assert "deviation:" in out
    assert "XX" in out


def test_active_reset(capsys):
    out = run_example("active_reset_feedback.py", capsys=capsys)
    assert "feedback stall" in out
    assert "verified |0> after:" in out


def test_cnot_microcode(capsys):
    out = run_example("cnot_microcode.py", capsys=capsys)
    assert "measured control=1 target=1" in out
    assert "Pulse {q0, q1}, CZ" in out


def test_composite_z(capsys):
    out = run_example("composite_z_gate.py", capsys=capsys)
    assert "measured 1   (expect 1" in out
    assert "measured 0   (expect 0" in out


def test_parameter_sweep(capsys):
    out = run_example("parameter_sweep.py", argv=["4", "4"], capsys=capsys)
    assert "machine reuse rate:" in out
    assert "machines built: 3" in out


def test_multi_qubit_sweep_serial(capsys):
    out = run_example("multi_qubit_sweep.py", argv=["5", "4", "serial"],
                      capsys=capsys)
    assert "q0  fitted pi amplitude" in out
    assert "q1  fitted pi amplitude" in out
    assert "machine reuse rate: 90%" in out


@pytest.mark.slow
def test_multi_qubit_sweep_process(capsys):
    out = run_example("multi_qubit_sweep.py", argv=["5", "8", "process"],
                      capsys=capsys)
    assert "q0  fitted pi amplitude" in out
    assert "q1  fitted pi amplitude" in out
    assert "backend=process" in out


@pytest.mark.slow
def test_bell_state(capsys):
    out = run_example("bell_state.py", capsys=capsys)
    assert "correlated outcomes:" in out


def test_entangling_suite(capsys):
    out = run_example("entangling_suite.py", argv=["8"], capsys=capsys)
    assert "conditional phase" in out
    assert "fidelity >=" in out
    assert "population P(000)+P(111)" in out


@pytest.mark.slow
def test_rabi(capsys):
    out = run_example("rabi_calibration.py", capsys=capsys)
    assert "fitted pi amplitude" in out


@pytest.mark.slow
def test_coherence_suite(capsys):
    out = run_example("coherence_suite.py", capsys=capsys)
    assert "fitted T1" in out
    assert "fitted T2*" in out
    assert "fitted T2e" in out


@pytest.mark.slow
def test_randomized_benchmarking(capsys):
    out = run_example("randomized_benchmarking.py", capsys=capsys)
    assert "error per Clifford" in out


def test_algorithm3_asset_assembles_and_matches_compiler():
    """The shipped allxy_algorithm3.qasm equals the compiler's output."""
    from repro.compiler import CompilerOptions, compile_program
    from repro.experiments.allxy import build_allxy_program
    from repro.isa import assemble
    from repro.isa.encoding import encode_program

    asset = (EXAMPLES / "programs" / "allxy_algorithm3.qasm").read_text()
    compiled = compile_program(build_allxy_program(2),
                               CompilerOptions(n_rounds=25600))
    assert encode_program(assemble(asset)) == encode_program(
        assemble(compiled.asm))
