"""Dispatcher: heterogeneous QuMA/APS2 routing and merged sweeps."""

import numpy as np
import pytest

from repro.baseline import (
    BASELINE_METRICS,
    allxy_spec,
    baseline_job,
    compare_architectures,
    synthetic_spec,
)
from repro.baseline.jobs import metric
from repro.compiler import CompilerOptions, QuantumProgram
from repro.core import MachineConfig
from repro.service import (
    BaselineBackend,
    Dispatcher,
    ExperimentService,
    JobSpec,
    SerialBackend,
)
from repro.utils.errors import ConfigurationError


def flip_spec(seed=None):
    p = QuantumProgram("flip", qubits=(2,))
    p.new_kernel("k").prepz(2).x(2).measure(2)
    return JobSpec(config=MachineConfig(qubits=(2,), trace_enabled=False),
                   program=p, compiler_options=CompilerOptions(n_rounds=2),
                   seed=seed)


class TestJobSpecRoutes:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec(config=MachineConfig(qubits=(2,)), asm="halt",
                    executor="remote")

    def test_baseline_spec_requires_cost_model(self):
        with pytest.raises(ConfigurationError):
            JobSpec(executor="baseline")

    def test_baseline_spec_rejects_program(self):
        with pytest.raises(ConfigurationError):
            JobSpec(executor="baseline", baseline=allxy_spec(), asm="halt")

    def test_quma_spec_requires_config(self):
        with pytest.raises(ConfigurationError):
            JobSpec(asm="halt")


class TestDispatcher:
    def test_routes_by_executor_field(self):
        dispatcher = Dispatcher({"quma": SerialBackend(),
                                 "baseline": BaselineBackend()})
        quma = flip_spec()
        baseline = baseline_job(allxy_spec())
        assert dispatcher.backend_for(quma).name == "serial"
        assert dispatcher.backend_for(baseline).name == "baseline"
        result = dispatcher.submit(baseline).result()
        assert result.executor == "baseline"
        dispatcher.drain()
        assert dispatcher.stats()["baseline"]["submitted"] == 1
        dispatcher.close()

    def test_unrouted_executor_raises(self):
        dispatcher = Dispatcher({"quma": SerialBackend()})
        with pytest.raises(ConfigurationError):
            dispatcher.submit(baseline_job(allxy_spec()))

    def test_empty_route_table_rejected(self):
        with pytest.raises(ConfigurationError):
            Dispatcher({})


class TestBaselineJobs:
    def test_metrics_match_direct_comparison(self):
        spec = allxy_spec()
        result = ExperimentService().run_job(baseline_job(spec))
        comparison = compare_architectures(spec)
        assert metric(result, "quma_memory_bytes") == \
            comparison.quma_memory_bytes
        assert metric(result, "aps2_memory_bytes") == \
            comparison.aps2_memory_bytes
        assert metric(result, "aps2_binaries") == comparison.aps2_binaries
        assert result.params["memory_ratio"] == comparison.memory_ratio
        assert result.averages.shape == (len(BASELINE_METRICS),)

    def test_bandwidth_rides_in_params(self):
        spec = allxy_spec()
        slow = ExperimentService().run_job(
            baseline_job(spec, bandwidth_bytes_per_s=1e6))
        fast = ExperimentService().run_job(
            baseline_job(spec, bandwidth_bytes_per_s=4e6))
        assert metric(slow, "aps2_upload_s") == \
            pytest.approx(4 * metric(fast, "aps2_upload_s"))


class TestMergedBatches:
    def test_mixed_batch_returns_merged_sweep_in_order(self):
        specs = [
            flip_spec(seed=1),
            baseline_job(allxy_spec()),
            flip_spec(seed=2),
            baseline_job(synthetic_spec(8, 4), label="synthetic"),
        ]
        sweep = ExperimentService().run_batch(specs)
        assert [job.executor for job in sweep] == \
            ["quma", "baseline", "quma", "baseline"]
        assert sweep[3].label == "synthetic"
        # QuMA entries match a pure-QuMA run; baseline entries match the
        # closed-form model — the merge changes neither.
        pure = ExperimentService().run_batch([specs[0], specs[2]])
        assert np.array_equal(sweep[0].averages, pure[0].averages)
        assert np.array_equal(sweep[2].averages, pure[1].averages)
        assert metric(sweep[1], "quma_binaries") == 1.0

    def test_mixed_batch_on_concurrent_backend(self):
        specs = [flip_spec(seed=1), baseline_job(allxy_spec()),
                 flip_spec(seed=2)]
        serial = ExperimentService().run_batch(specs)
        with ExperimentService(backend="process", workers=2) as svc:
            merged = svc.run_batch(specs)
            routes = svc.stats()["routes"]
        for s, p in zip(serial, merged):
            assert np.array_equal(s.averages, p.averages)
        assert routes["quma"]["submitted"] == 2
        assert routes["baseline"]["submitted"] == 1

    def test_mixed_stream_completes_everything(self):
        specs = [flip_spec(seed=s) for s in (1, 2)] + \
            [baseline_job(synthetic_spec(4, 2), label=f"b{i}")
             for i in range(3)]
        with ExperimentService() as svc:
            for spec in specs:
                svc.submit(spec)
            got = list(svc.iter_completed())
        assert len(got) == len(specs)
        assert sum(1 for r in got if r.executor == "baseline") == 3

    def test_baseline_sweep_artifact_round_trip(self, tmp_path):
        sweep = ExperimentService().run_batch(
            [baseline_job(synthetic_spec(n, 4), label=f"n{n}",
                          params={"combinations": n})
             for n in (4, 8, 16)])
        path = tmp_path / "baseline_sweep.json"
        sweep.save(path)
        from repro.service import SweepResult

        loaded = SweepResult.load(path)
        assert loaded.param_values("combinations") == [4, 8, 16]
        assert np.array_equal(loaded.averages(), sweep.averages())
        assert [j.executor for j in loaded] == ["baseline"] * 3
