"""Exception hierarchy: pickle round-trips for every error class.

Job errors cross the process boundary from pool workers back to the
submitting process, so *every* exception type in ``repro.utils.errors``
must survive a pickle round-trip with its message and extra attributes
intact — including subclasses whose constructors mutate the message
(``AssemblyError`` prefixes the line number), which naive
``cls(*args)``-style unpickling would double-apply.
"""

import inspect
import pickle

import pytest

import repro.utils.errors as errors_mod
from repro.utils.errors import (
    AssemblyError,
    FaultInjected,
    JobError,
    JobTimeout,
    ReproError,
    TransientJobError,
    WorkerLost,
)

#: Constructor calls exercising every extra attribute each class carries.
#: Classes not listed are built as ``cls("message")``.
SPECIAL_CONSTRUCTORS = {
    "AssemblyError": lambda cls: cls("unknown mnemonic 'QWAIT'", line=3),
    "FaultInjected": lambda cls: cls("injected transient at compile",
                                     site="compile", attempt=2),
    "WorkerLost": lambda cls: cls("worker died", worker="pid:4242"),
    "JobTimeout": lambda cls: cls("attempt exceeded budget",
                                  stage="execute", elapsed_s=1.25),
    "JobError": lambda cls: cls(
        "FaultInjected: injected transient at compile",
        exc_type="FaultInjected", remote_traceback="Traceback ...\n",
        attempts=3, label="rabi a=0.5", seed=1234, quarantined=True),
}


def all_error_classes():
    """Every exception class defined in the errors module."""
    return [cls for _, cls in inspect.getmembers(errors_mod, inspect.isclass)
            if issubclass(cls, ReproError)
            and cls.__module__ == errors_mod.__name__]


def build(cls):
    factory = SPECIAL_CONSTRUCTORS.get(cls.__name__)
    if factory is not None:
        return factory(cls)
    return cls("a readable message")


def test_module_defines_the_expected_taxonomy():
    names = {cls.__name__ for cls in all_error_classes()}
    assert {"ReproError", "AssemblyError", "TransientJobError",
            "FaultInjected", "WorkerLost", "JobTimeout", "JobCancelled",
            "JobError"} <= names


@pytest.mark.parametrize("cls", all_error_classes(),
                         ids=lambda cls: cls.__name__)
def test_every_error_survives_pickle(cls):
    original = build(cls)
    clone = pickle.loads(pickle.dumps(original))
    assert type(clone) is cls
    assert str(clone) == str(original)
    assert clone.args == original.args
    assert clone.__dict__ == original.__dict__


def test_assembly_error_does_not_double_prefix_line():
    exc = AssemblyError("unknown mnemonic", line=7)
    clone = pickle.loads(pickle.dumps(exc))
    assert str(clone) == "line 7: unknown mnemonic"
    assert clone.line == 7


def test_job_error_attributes_and_attempt_suffix():
    exc = SPECIAL_CONSTRUCTORS["JobError"](JobError)
    assert "(after 3 attempts)" in str(exc)
    clone = pickle.loads(pickle.dumps(exc))
    assert clone.exc_type == "FaultInjected"
    assert clone.remote_traceback.startswith("Traceback")
    assert clone.attempts == 3 and clone.quarantined
    assert clone.label == "rabi a=0.5" and clone.seed == 1234


def test_transient_family_classification():
    for cls in (FaultInjected, WorkerLost, JobTimeout):
        assert issubclass(cls, TransientJobError)
    assert not issubclass(JobError, TransientJobError)
