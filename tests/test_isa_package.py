"""Tests for the portable program-package format."""

import pytest

from repro.core import MachineConfig, QuMA
from repro.isa.package import (
    load_package,
    pack_program,
    save_package,
    unpack_program,
)
from repro.utils.errors import ReproError

CNOT_BODY = """
    Pulse {q0}, mY90
    Wait 4
    Pulse {q0, q1}, CZ
    Wait 8
    Pulse {q0}, Y90
    Wait 4
"""


def test_roundtrip_simple_program():
    machine = QuMA(MachineConfig(qubits=(2,)))
    program = machine.assemble("""
        Wait 4
        Pulse {q2}, X180
        Wait 4
        MPG {q2}, 300
        MD {q2}, r7
        halt
    """)
    text = pack_program(program)
    back, microprograms = unpack_program(text)
    assert microprograms == {}
    assert back.to_binary() == program.to_binary()
    assert back.instructions == program.instructions


def test_roundtrip_with_microprogram():
    machine = QuMA(MachineConfig(qubits=(0, 1), flux_pairs=((0, 1),)))
    machine.define_microprogram("CNOT", 2, CNOT_BODY)
    program = machine.assemble("""
        Wait 4
        Pulse {q1}, X180
        Wait 4
        CNOT q0, q1
        MPG {q0}, 300
        MD {q0}, r6
        halt
    """)
    text = pack_program(program, {"CNOT": (2, CNOT_BODY)})
    back, microprograms = unpack_program(text)
    assert "CNOT" in microprograms
    assert back.uprog_names == ["CNOT"]
    assert back.to_binary() == program.to_binary()


def test_pack_rejects_missing_microprogram_bodies():
    machine = QuMA(MachineConfig(qubits=(0, 1), flux_pairs=((0, 1),)))
    machine.define_microprogram("CNOT", 2, CNOT_BODY)
    program = machine.assemble("CNOT q0, q1")
    with pytest.raises(ReproError):
        pack_program(program)


def test_unpack_rejects_garbage():
    with pytest.raises(ReproError):
        unpack_program("not json at all {")
    with pytest.raises(ReproError):
        unpack_program('{"format": "something-else"}')
    with pytest.raises(ReproError):
        unpack_program('{"format": "quma-program", "version": 99}')


def test_package_file_runs_through_cli(tmp_path, capsys):
    from repro.cli import main

    machine = QuMA(MachineConfig(qubits=(0, 1), flux_pairs=((0, 1),)))
    machine.define_microprogram("CNOT", 2, CNOT_BODY)
    program = machine.assemble("""
        Wait 4
        Pulse {q1}, X180
        Wait 4
        CNOT q0, q1
        MPG {q0}, 300
        MD {q0}, r6
        halt
    """)
    path = tmp_path / "bell.qpkg"
    save_package(program, str(path), {"CNOT": (2, CNOT_BODY)})
    # The CLI machine needs the flux pair: via a config file.
    from repro.core.config_io import save_config

    cfg = tmp_path / "m.json"
    save_config(MachineConfig(qubits=(0, 1), flux_pairs=((0, 1),)), str(cfg))
    rc = main(["run", str(path), "--config", str(cfg)])
    assert rc == 0
    assert "'r6': 1" in capsys.readouterr().out


def test_save_load_file_roundtrip(tmp_path):
    machine = QuMA(MachineConfig(qubits=(2,)))
    program = machine.assemble("Wait 4\nPulse {q2}, Y90\nhalt")
    path = tmp_path / "p.qpkg"
    save_package(program, str(path))
    back, _ = load_package(str(path))
    assert back.instructions == program.instructions
