"""Service-level tests for the round-replay fast path and its plan cache."""

import numpy as np

from repro.compiler.codegen import CompilerOptions
from repro.core import MachineConfig
from repro.experiments.allxy import build_allxy_program
from repro.service import ExperimentService, JobSpec, ReplayCache, derive_job_seed


def small_config(**overrides):
    defaults = dict(qubits=(2,), trace_enabled=False, calibration_shots=20)
    defaults.update(overrides)
    return MachineConfig(**defaults)


def allxy_spec(n_rounds, seed=None, replay=True):
    return JobSpec(config=small_config(), program=build_allxy_program(2),
                   compiler_options=CompilerOptions(n_rounds=n_rounds),
                   seed=seed, replay=replay)


class TestServiceReplay:
    def test_replay_on_off_parity_through_service(self):
        on = ExperimentService().run_job(allxy_spec(8))
        off = ExperimentService().run_job(allxy_spec(8, replay=False))
        assert on.replayed_rounds == 6
        assert off.replayed_rounds == 0
        assert np.array_equal(on.averages, off.averages)
        assert on.run.duration_ns == off.run.duration_ns

    def test_plan_cache_hits_across_seeds(self):
        service = ExperimentService()
        sweep = service.run_batch([allxy_spec(6, seed=derive_job_seed(3, i))
                                   for i in range(3)])
        assert [j.replay_plan_hit for j in sweep] == [False, True, True]
        assert [j.replayed_rounds for j in sweep] == [4, 6, 6]
        assert service.replay_cache.stats()["hits"] == 2
        # different seeds must still give different draws
        assert not np.array_equal(sweep[0].averages, sweep[1].averages)

    def test_warm_plan_matches_cold_job_bitwise(self):
        """The same spec executed cold (plan miss) and warm (plan hit)
        must produce byte-equal results — the property that keeps the
        serial and process backends in exact agreement."""
        spec = allxy_spec(6, seed=123)
        cold = ExperimentService().run_job(spec)
        service = ExperimentService()
        service.run_job(allxy_spec(6, seed=7))  # builds the plan
        warm = service.run_job(allxy_spec(6, seed=123))
        assert not cold.replay_plan_hit and warm.replay_plan_hit
        assert np.array_equal(cold.averages, warm.averages)
        assert cold.run.duration_ns == warm.run.duration_ns
        assert cold.run.instructions_executed == warm.run.instructions_executed

    def test_ineligible_spec_reports_zero_replayed(self):
        job = ExperimentService().run_job(allxy_spec(2))
        assert job.replayed_rounds == 0 and not job.replay_plan_hit

    def test_asm_spec_needs_declared_rounds(self):
        asm = """
            mov r1, 0
            mov r2, 6
        Outer_Loop:
            Wait 40000
            Pulse {q2}, X90
            Wait 4
            MPG {q2}, 300
            MD {q2}
            addi r1, r1, 1
            bne r1, r2, Outer_Loop
            halt
        """
        service = ExperimentService()
        config = small_config(dcu_points=1)
        silent = service.run_job(JobSpec(config=config, asm=asm))
        declared = service.run_job(JobSpec(config=config, asm=asm, n_rounds=6))
        assert silent.replayed_rounds == 0
        assert declared.replayed_rounds == 4
        assert np.array_equal(silent.averages, declared.averages)

    def test_replay_cache_key_separates_uploads(self):
        from repro.service import LUTUpload

        cache = ReplayCache()
        base = JobSpec(config=small_config(dcu_points=1), asm="halt",
                       n_rounds=4)
        up_a = JobSpec(config=small_config(dcu_points=1), asm="halt",
                       n_rounds=4,
                       uploads=(LUTUpload(2, "P", (0.1 + 0j,)),))
        up_b = JobSpec(config=small_config(dcu_points=1), asm="halt",
                       n_rounds=4,
                       uploads=(LUTUpload(2, "P", (0.2 + 0j,)),))
        keys = {cache.key_for(base), cache.key_for(up_a), cache.key_for(up_b)}
        assert len(keys) == 3

    def test_replay_cache_key_ignores_run_seed_and_rounds(self):
        cache = ReplayCache()
        a = allxy_spec(8, seed=1)
        b = allxy_spec(200, seed=2)
        assert cache.key_for(a) == cache.key_for(b)

    def test_replay_cache_key_separates_construction_seeds(self):
        """config.seed fixes the readout calibration — differently-seeded
        configs are different instruments and must not share plans."""
        cache = ReplayCache()
        a = JobSpec(config=small_config(seed=0), program=build_allxy_program(2))
        b = JobSpec(config=small_config(seed=1), program=build_allxy_program(2))
        assert cache.key_for(a) != cache.key_for(b)
