"""Fault-tolerant job execution: deadlines, retries, loss, and chaos.

The acceptance contract of the robustness layer (DESIGN.md "Failure
semantics"):

* a seeded :class:`FaultPlan` injects the *same* faults into the same
  jobs on every backend and every run — chaos you can replay;
* retries re-derive the identical job seed, so a sweep that recovers
  from injected transient failures lands bit-identical to a fault-free
  run on every backend (Rabi + Bell, the acceptance criterion);
* a SIGKILLed pool worker never hangs ``drain()``: the watchdog
  resubmits the lost job (or resolves its future with a
  :class:`JobError`), and ``drain(timeout=...)`` bounds the wait;
* exhausted attempts quarantine — reported in ``stats()``, never
  blocking the stream of healthy jobs;
* the same faulty spec surfaces the same exception type and message on
  serial, process, and async.

Set ``REPRO_SERVICE_BACKEND=serial|process|async`` to pin the
parametrized backend (the CI matrix runs one backend per job).
"""

import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.compiler import CompilerOptions, QuantumProgram
from repro.core import MachineConfig
from repro.obs import STAGE_ATTEMPT_FAILED
from repro.pulse import PulseCalibration
from repro.service import (
    ExperimentService,
    FaultPlan,
    JobSpec,
    NO_RETRY,
    RetryPolicy,
    SweepResult,
)
from repro.service.faults import FAULT_SITES
from repro.session import Session
from repro.utils.errors import (
    ConfigurationError,
    FaultInjected,
    JobCancelled,
    JobError,
    JobTimeout,
    TransientJobError,
    WorkerLost,
)

ALL_BACKENDS = ("serial", "process", "async")
_PINNED = os.environ.get("REPRO_SERVICE_BACKEND")
BACKENDS_UNDER_TEST = (_PINNED,) if _PINNED else ALL_BACKENDS
CONCURRENT_UNDER_TEST = tuple(b for b in BACKENDS_UNDER_TEST
                              if b != "serial")

RETRY = RetryPolicy(max_attempts=6, backoff_s=0.001, max_backoff_s=0.01)


def fast_config(**kwargs):
    kwargs.setdefault("qubits", (2,))
    kwargs.setdefault("trace_enabled", False)
    kwargs.setdefault("calibration", PulseCalibration(kappa=0.7))
    return MachineConfig(**kwargs)


def flip_program():
    p = QuantumProgram("flip", qubits=(2,))
    p.new_kernel("k").prepz(2).x(2).measure(2)
    return p


def flip_spec(seed=None, retry=None, timeout=None, label=None, n_rounds=2):
    return JobSpec(config=fast_config(), program=flip_program(),
                   compiler_options=CompilerOptions(n_rounds=n_rounds),
                   seed=seed, retry=retry, timeout=timeout,
                   label=label if label is not None else f"flip s{seed}")


def bad_spec(seed=0):
    """A deterministically failing spec: unknown mnemonic at compile."""
    return JobSpec(config=fast_config(), asm="NOPE 1, 2\nhalt", seed=seed,
                   label="bad")


# -- FaultPlan: the deterministic chaos schedule ------------------------------


class TestFaultPlan:
    def test_schedule_is_deterministic_across_instances(self):
        a = FaultPlan(seed=7, rate=0.5, kinds=("transient", "crash"))
        b = FaultPlan(seed=7, rate=0.5, kinds=("transient", "crash"))
        decisions = [(site, job, attempt, a.fault_for(site, job, attempt))
                     for site in FAULT_SITES
                     for job in (0, 1234, 2**31)
                     for attempt in range(4)]
        assert decisions == [
            (site, job, attempt, b.fault_for(site, job, attempt))
            for site, job, attempt, _ in decisions]
        assert any(kind is not None for *_, kind in decisions)

    def test_different_seeds_differ(self):
        a, b = FaultPlan(seed=1, rate=0.5), FaultPlan(seed=2, rate=0.5)
        grid = [(site, job, attempt) for site in FAULT_SITES
                for job in range(20) for attempt in range(3)]
        assert [a.fault_for(*point) for point in grid] \
            != [b.fault_for(*point) for point in grid]

    def test_rate_zero_never_fires_and_rate_one_always_fires(self):
        off = FaultPlan(seed=3, rate=0.0)
        on = FaultPlan(seed=3, rate=1.0, max_faults_per_site=None)
        for job in range(10):
            assert off.fault_for("execute", job, 0) is None
            assert on.fault_for("execute", job, 0) == "transient"

    def test_unlisted_site_never_fires(self):
        plan = FaultPlan(seed=3, rate=1.0, sites=("compile",))
        assert plan.fault_for("execute", 0, 0) is None
        assert plan.fault_for("compile", 0, 0) == "transient"

    def test_per_site_cap_bounds_consecutive_attempts(self):
        plan = FaultPlan(seed=5, rate=1.0, max_faults_per_site=2)
        kinds = [plan.fault_for("execute", 42, a) for a in range(5)]
        assert kinds[:2] == ["transient", "transient"]
        assert kinds[2:] == [None, None, None]

    def test_plan_pickles_with_schedule_intact(self):
        plan = FaultPlan(seed=11, rate=0.4, kinds=("transient", "hang"))
        clone = pickle.loads(pickle.dumps(plan))
        grid = [(site, job, attempt) for site in FAULT_SITES
                for job in range(10) for attempt in range(3)]
        assert [plan.fault_for(*p) for p in grid] \
            == [clone.fault_for(*p) for p in grid]

    def test_check_raises_fault_injected_with_site_and_attempt(self):
        plan = FaultPlan(seed=3, rate=1.0)
        with pytest.raises(FaultInjected) as info:
            plan.check("execute", 0, 0, label="job0")
        assert info.value.site == "execute"
        assert info.value.attempt == 0
        assert "job0" in str(info.value)
        assert plan.stats() == {"execute.transient": 1}

    def test_crash_degrades_to_transient_in_process(self):
        plan = FaultPlan(seed=3, rate=1.0, kinds=("crash",))
        # allow_crash=False (the submitting process): must raise, never
        # SIGKILL — this very test process surviving is the assertion.
        with pytest.raises(FaultInjected):
            plan.check("execute", 0, 0, allow_crash=False)
        assert plan.stats() == {"execute.transient": 1}

    def test_from_env_is_opt_in_and_parses_fields(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"REPRO_FAULT_SEED": ""}) is None
        plan = FaultPlan.from_env({
            "REPRO_FAULT_SEED": "42", "REPRO_FAULT_RATE": "0.25",
            "REPRO_FAULT_SITES": "compile,execute",
            "REPRO_FAULT_KINDS": "transient,crash",
            "REPRO_FAULT_HANG_S": "0.5",
            "REPRO_FAULT_MAX_PER_SITE": "3"})
        assert plan.seed == 42 and plan.rate == 0.25
        assert plan.sites == ("compile", "execute")
        assert plan.kinds == ("transient", "crash")
        assert plan.hang_s == 0.5 and plan.max_faults_per_site == 3
        unbounded = FaultPlan.from_env({"REPRO_FAULT_SEED": "1",
                                        "REPRO_FAULT_MAX_PER_SITE": "none"})
        assert unbounded.max_faults_per_site is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, sites=("nope",))
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=1, kinds=("nope",))


# -- RetryPolicy: bounded deterministic re-execution --------------------------


class TestRetryPolicy:
    def test_classification(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.is_retryable(FaultInjected("x"))
        assert policy.is_retryable(WorkerLost("x"))
        assert policy.is_retryable(JobTimeout("x"))
        assert not policy.is_retryable(ConfigurationError("x"))
        extended = RetryPolicy(max_attempts=3, retry_on=(OSError,))
        assert extended.is_retryable(OSError("x"))

    def test_should_retry_respects_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        exc = TransientJobError("x")
        assert policy.should_retry(exc, 0)
        assert policy.should_retry(exc, 1)
        assert not policy.should_retry(exc, 2)
        assert not NO_RETRY.should_retry(exc, 0)

    def test_backoff_is_deterministic_exponential_and_capped(self):
        policy = RetryPolicy(max_attempts=8, backoff_s=0.01,
                             backoff_factor=2.0, max_backoff_s=0.05,
                             jitter=0.1)
        first = [policy.backoff_for(a, seed=99) for a in range(1, 6)]
        again = [policy.backoff_for(a, seed=99) for a in range(1, 6)]
        assert first == again
        for attempt, backoff in enumerate(first, start=1):
            base = min(0.01 * 2.0 ** (attempt - 1), 0.05)
            assert base <= backoff <= base * 1.1
        assert policy.backoff_for(0, seed=99) == 0.0
        assert policy.backoff_for(3, seed=1) != policy.backoff_for(3, seed=2)

    def test_total_backoff_bounds_the_sum(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.01, jitter=0.0)
        total = policy.total_backoff_s()
        assert total == pytest.approx(0.01 + 0.02 + 0.04)
        assert policy.total_backoff_s(base_attempt=2) \
            == pytest.approx(0.02 + 0.04)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=2.0)


# -- acceptance: chaos sweeps land bit-identical ------------------------------


AMPS = [0.0, 0.2, 0.4, 0.6, 0.8]


def run_rabi_and_bell(session):
    rabi = session.submit_experiment("rabi", amplitudes=AMPS, n_rounds=2)
    rabi.result()
    bell = session.submit_experiment("bell", n_rounds=4, bases=("ZZ",))
    bell.result()
    return rabi, bell


@pytest.fixture(scope="module")
def clean_baseline():
    """Fault-free Rabi + Bell averages (serial), the chaos oracle."""
    with Session(backend="serial", seed=11) as session:
        rabi, bell = run_rabi_and_bell(session)
        return rabi.sweep.averages(), bell.sweep.averages()


class TestChaosDeterminism:
    @pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
    def test_transient_chaos_recovers_bit_identical(self, backend,
                                                    clean_baseline):
        """The acceptance criterion: >=10% injected transient failures
        into Rabi + Bell sweeps; retries recover every job and the
        averages are bit-identical to the fault-free run."""
        plan = FaultPlan(seed=77, rate=0.35)
        with Session(backend=backend, workers=2, seed=11,
                     faults=plan, retry=RETRY) as session:
            rabi, bell = run_rabi_and_bell(session)
            clean_rabi, clean_bell = clean_baseline
            assert np.array_equal(rabi.sweep.averages(), clean_rabi)
            assert np.array_equal(bell.sweep.averages(), clean_bell)
            retries = rabi.sweep.total_retries + bell.sweep.total_retries
            assert retries > 0  # the chaos actually bit
            stats = session.stats()
            assert stats["routes"]["quma"]["failed"] == 0
            service = stats["metrics"]["service"]["counters"]
            assert service["service.retries"] == retries

    def test_replayed_register_job_retries_bit_identical(self):
        """A transient fault during a joint-replayed register job: the
        retry re-derives the same job seed, takes the same replay fast
        path, and every correlated observable lands bit-identical to the
        fault-free run."""
        def run(faults):
            with Session(backend="serial", seed=11, faults=faults,
                         retry=RETRY) as session:
                future = session.submit_experiment(
                    "ghz", targets=((0, 1, 2),), n_rounds=8, repeats=4)
                future.result()
                return [f.result() for f in future.futures]

        clean = run(None)
        chaos = run(FaultPlan(seed=77, rate=0.35))
        assert sum(j.attempts - 1 for j in chaos) > 0  # the chaos bit
        assert any(j.replayed_rounds > 0 for j in chaos)
        for a, b in zip(clean, chaos):
            assert np.asarray(a.averages).tobytes() \
                == np.asarray(b.averages).tobytes()
            assert np.asarray(a.joint_counts).tobytes() \
                == np.asarray(b.joint_counts).tobytes()
            assert a.s_grounds == b.s_grounds
            assert a.s_exciteds == b.s_exciteds

    def test_chaos_replays_identically(self):
        """Same plan seed, same retry schedule: two chaos runs agree on
        every attempt count, not just on the averages."""
        def run():
            svc = ExperimentService(backend="serial",
                                    faults=FaultPlan(seed=5, rate=0.4),
                                    retry=RETRY)
            with svc:
                sweep = svc.run_batch([flip_spec(seed=i) for i in range(4)])
            return [job.attempts for job in sweep.jobs]

        first, second = run(), run()
        assert first == second
        assert sum(first) > 4  # at least one retry happened

    def test_attempts_round_trip_through_sweep_artifact(self, tmp_path):
        svc = ExperimentService(backend="serial",
                                faults=FaultPlan(seed=5, rate=0.4),
                                retry=RETRY)
        with svc:
            sweep = svc.run_batch([flip_spec(seed=i) for i in range(4)])
        path = tmp_path / "sweep.json"
        sweep.save(str(path))
        loaded = SweepResult.load(str(path))
        assert [j.attempts for j in loaded.jobs] \
            == [j.attempts for j in sweep.jobs]
        assert loaded.total_retries == sweep.total_retries


# -- retry mechanics (serial: inline and observable) --------------------------


class TestRetryExecution:
    def test_retry_recovers_and_counts_attempts(self):
        clean = ExperimentService(backend="serial")
        with clean:
            baseline = clean.run_job(flip_spec(seed=3))
        chaotic = ExperimentService(backend="serial",
                                    faults=FaultPlan(seed=8, rate=0.9),
                                    retry=RETRY)
        with chaotic:
            job = chaotic.run_job(flip_spec(seed=3))
        assert job.attempts > 1
        assert np.array_equal(job.averages, baseline.averages)

    def test_exhausted_attempts_quarantine(self):
        plan = FaultPlan(seed=1, rate=1.0, max_faults_per_site=None)
        svc = ExperimentService(backend="serial", faults=plan,
                                retry=RetryPolicy(max_attempts=2,
                                                  backoff_s=0.0))
        with svc:
            future = svc.submit(flip_spec(seed=0, label="poison"))
            svc.drain()  # quarantined futures never block drain
            exc = future.exception()
            assert isinstance(exc, JobError)
            assert exc.quarantined and exc.attempts == 2
            assert exc.exc_type == "FaultInjected"
            assert "(after 2 attempts)" in str(exc)
            stats = svc.stats()["routes"]["quma"]
            assert stats["failed"] == 1 and stats["quarantined"] == 1
            entry = stats["quarantine"][0]
            assert entry["label"] == "poison" and entry["exhausted"]

    def test_non_retryable_failure_fails_fast(self):
        svc = ExperimentService(backend="serial", retry=RETRY)
        with svc:
            future = svc.submit(bad_spec())
            svc.drain()
            exc = future.exception()
        assert isinstance(exc, JobError)
        assert exc.attempts == 1 and not exc.quarantined
        assert exc.exc_type == "AssemblyError"

    def test_spec_policy_overrides_service_default(self):
        plan = FaultPlan(seed=1, rate=1.0, max_faults_per_site=None)
        svc = ExperimentService(backend="serial", faults=plan, retry=RETRY)
        with svc:
            future = svc.submit(flip_spec(seed=0, retry=NO_RETRY))
            svc.drain()
            exc = future.exception()
        assert isinstance(exc, JobError) and exc.attempts == 1

    def test_recovered_attempts_become_spans(self):
        plan = FaultPlan(seed=8, rate=0.9)
        svc = ExperimentService(backend="serial", faults=plan, retry=RETRY)
        with svc:
            spec = flip_spec(seed=3)
            spec.telemetry = True
            job = svc.run_job(spec)
        assert job.attempts > 1
        failed = [s for s in job.telemetry.spans
                  if s.name == STAGE_ATTEMPT_FAILED]
        assert len(failed) == job.attempts - 1
        assert all(s.meta["attempt"] < job.attempts - 1 for s in failed)
        assert all("FaultInjected" in s.meta["error"] for s in failed)

    def test_deadline_enforced_at_stage_boundaries(self):
        plan = FaultPlan(seed=2, rate=1.0, kinds=("hang",), hang_s=0.05,
                         sites=("execute",))
        svc = ExperimentService(backend="serial", faults=plan)
        with svc:
            future = svc.submit(flip_spec(seed=0, timeout=0.01))
            svc.drain()
            exc = future.exception()
        assert isinstance(exc, JobError)
        assert exc.exc_type == "JobTimeout"


# -- worker loss: SIGKILL never hangs drain -----------------------------------


class TestWorkerLoss:
    @pytest.mark.skipif("process" not in BACKENDS_UNDER_TEST,
                        reason="process backend not under test")
    def test_crash_faults_recover_bit_identical(self):
        clean = ExperimentService(backend="serial")
        with clean:
            baseline = clean.run_batch([flip_spec(seed=i) for i in range(5)])
        plan = FaultPlan(seed=7, rate=0.3, kinds=("transient", "crash"))
        svc = ExperimentService(backend="process", workers=2, faults=plan,
                                retry=RetryPolicy(max_attempts=8,
                                                  backoff_s=0.001))
        with svc:
            sweep = svc.run_batch([flip_spec(seed=i) for i in range(5)])
            stats = svc.stats()["routes"]["quma"]
        assert np.array_equal(sweep.averages(), baseline.averages())
        assert stats["worker_losses"] > 0  # workers really died
        assert stats["failed"] == 0

    @pytest.mark.skipif("process" not in BACKENDS_UNDER_TEST,
                        reason="process backend not under test")
    def test_sigkilled_worker_never_hangs_drain(self):
        """Kill a live pool worker by hand mid-batch: the watchdog
        recovers the in-flight job and drain(timeout) returns."""
        clean = ExperimentService(backend="serial")
        with clean:
            baseline = clean.run_batch(
                [flip_spec(seed=i, n_rounds=32) for i in range(6)])
        svc = ExperimentService(backend="process", workers=2,
                                retry=RetryPolicy(max_attempts=4,
                                                  backoff_s=0.001))
        with svc:
            futures = [svc.submit(flip_spec(seed=i, n_rounds=32),
                                  stream=False)
                       for i in range(6)]
            backend = svc.dispatcher.routes["quma"]
            deadline = time.monotonic() + 10.0
            while backend._pool is None and time.monotonic() < deadline:
                time.sleep(0.01)
            victims = [p.pid for p in backend._pool._pool][:1]
            time.sleep(0.05)  # let some jobs reach the workers
            for pid in victims:
                os.kill(pid, signal.SIGKILL)
            svc.drain(timeout=60.0)  # must not hang — the satellite fix
            results = [f.result() for f in futures]
        assert np.array_equal(np.stack([r.averages for r in results]),
                              baseline.averages())

    @pytest.mark.skipif("process" not in BACKENDS_UNDER_TEST,
                        reason="process backend not under test")
    def test_exhausted_worker_loss_resolves_with_job_error(self):
        """Every attempt crashes the worker: the loss is terminal and the
        future resolves with a JobError instead of hanging."""
        plan = FaultPlan(seed=1, rate=1.0, kinds=("crash",),
                         sites=("execute",), max_faults_per_site=None)
        svc = ExperimentService(backend="process", workers=1, faults=plan,
                                retry=RetryPolicy(max_attempts=2,
                                                  backoff_s=0.0))
        with svc:
            future = svc.submit(flip_spec(seed=0, label="doomed"))
            svc.drain(timeout=60.0)
            exc = future.exception()
            stats = svc.stats()["routes"]["quma"]
        assert isinstance(exc, JobError)
        assert exc.exc_type == "WorkerLost"
        assert stats["worker_losses"] >= 2

    @pytest.mark.skipif("process" not in BACKENDS_UNDER_TEST,
                        reason="process backend not under test")
    def test_hung_worker_is_killed_on_timeout_budget(self):
        plan = FaultPlan(seed=2, rate=1.0, kinds=("hang",), hang_s=30.0,
                         sites=("execute",))
        svc = ExperimentService(backend="process", workers=1, faults=plan)
        with svc:
            backend = svc.dispatcher.routes["quma"]
            backend.KILL_GRACE_S = 0.1
            future = svc.submit(flip_spec(seed=0, timeout=0.2))
            svc.drain(timeout=30.0)
            exc = future.exception()
            stats = svc.stats()["routes"]["quma"]
        assert isinstance(exc, JobError)
        assert stats["hang_kills"] >= 1

    @pytest.mark.skipif("async" not in BACKENDS_UNDER_TEST,
                        reason="async backend not under test")
    def test_async_crash_faults_recover_bit_identical(self):
        clean = ExperimentService(backend="serial")
        with clean:
            baseline = clean.run_batch([flip_spec(seed=i) for i in range(4)])
        plan = FaultPlan(seed=7, rate=0.2, kinds=("transient", "crash"))
        svc = ExperimentService(backend="async", workers=2, faults=plan,
                                retry=RetryPolicy(max_attempts=10,
                                                  backoff_s=0.001))
        with svc:
            sweep = svc.run_batch([flip_spec(seed=i) for i in range(4)])
            stats = svc.stats()["routes"]["quma"]
        assert np.array_equal(sweep.averages(), baseline.averages())
        assert stats["failed"] == 0

    def test_worker_error_carries_remote_traceback(self):
        for backend in CONCURRENT_UNDER_TEST:
            svc = ExperimentService(backend=backend, workers=1)
            with svc:
                future = svc.submit(bad_spec())
                svc.drain(timeout=60.0)
                exc = future.exception()
            assert isinstance(exc, JobError)
            assert "AssemblyError" in exc.remote_traceback
            assert "Traceback" in exc.remote_traceback


# -- drain timeout, close, cancel ---------------------------------------------


class TestDrainAndCancel:
    @pytest.mark.skipif("process" not in BACKENDS_UNDER_TEST,
                        reason="process backend not under test")
    def test_drain_timeout_raises_instead_of_hanging(self):
        plan = FaultPlan(seed=2, rate=1.0, kinds=("hang",), hang_s=2.0,
                         sites=("execute",))
        svc = ExperimentService(backend="process", workers=1, faults=plan)
        with svc:
            svc.submit(flip_spec(seed=0))
            t0 = time.monotonic()
            with pytest.raises(TimeoutError, match="drain timed out"):
                svc.drain(timeout=0.2)
            assert time.monotonic() - t0 < 1.5
            svc.drain(timeout=30.0)  # the hang ends; drain completes

    def test_close_resolves_outstanding_futures(self):
        for backend in CONCURRENT_UNDER_TEST:
            svc = ExperimentService(backend=backend, workers=1)
            futures = [svc.submit(flip_spec(seed=i), stream=False)
                       for i in range(3)]
            svc.close()  # no drain first: close must still resolve all
            assert all(f.done() for f in futures)

    @pytest.mark.skipif("async" not in BACKENDS_UNDER_TEST,
                        reason="async backend not under test")
    def test_cancel_skips_queued_async_jobs(self):
        plan = FaultPlan(seed=2, rate=1.0, kinds=("hang",), hang_s=0.5,
                         sites=("execute",), max_faults_per_site=1)
        svc = ExperimentService(backend="async", workers=1, faults=plan)
        with svc:
            first = svc.submit(flip_spec(seed=0), stream=False)
            queued = svc.submit(flip_spec(seed=1), stream=False)
            cancelled = queued.cancel()
            svc.drain(timeout=60.0)
            assert cancelled and queued.cancelled()
            with pytest.raises(JobCancelled):
                queued.result()
            assert first.exception() is None
            stats = svc.stats()["routes"]["quma"]
            assert stats["cancelled"] == 1 and stats["failed"] == 0

    def test_cancel_on_resolved_serial_future_is_refused(self):
        svc = ExperimentService(backend="serial")
        with svc:
            future = svc.submit(flip_spec(seed=0))
            assert future.done()
            assert not future.cancel()
            assert not future.cancelled()
            assert future.exception() is None


# -- failing-job parity across backends ---------------------------------------


class TestFailingJobParity:
    def test_same_faulty_spec_same_error_everywhere(self):
        """Registry-driven parity: the same deterministically faulty spec
        surfaces the same exception type and message on every backend,
        and the stream still yields the healthy jobs."""
        observed = {}
        for backend in dict.fromkeys(("serial",) + BACKENDS_UNDER_TEST):
            svc = ExperimentService(backend=backend, workers=2)
            with svc:
                futures = [svc.submit(spec, stream=False)
                           for spec in (flip_spec(seed=1), bad_spec(),
                                        flip_spec(seed=2))]
                healthy, errors = [], []
                for future in svc.iter_futures(futures, timeout=60.0):
                    exc = future.exception()
                    if exc is not None:
                        errors.append(exc)
                    else:
                        healthy.append(future.result())
            assert len(healthy) == 2  # the stream survived the failure
            assert len(errors) == 1
            observed[backend] = (type(errors[0]), str(errors[0]),
                                 sorted(j.seed for j in healthy))
        reference = observed["serial"]
        assert reference[0] is JobError
        for backend, got in observed.items():
            assert got == reference, f"{backend} diverged from serial"

    @pytest.mark.parametrize("backend", BACKENDS_UNDER_TEST)
    def test_poison_job_does_not_block_healthy_stream(self, backend):
        plan = FaultPlan(seed=1, rate=1.0, sites=("compile",),
                         max_faults_per_site=None)
        svc = ExperimentService(backend=backend, workers=2, faults=plan,
                                retry=RetryPolicy(max_attempts=2,
                                                  backoff_s=0.0))
        with svc:
            # The plan poisons every QuMA job at compile; the baseline
            # route has no compile site, so its jobs stay healthy.
            from repro.baseline.jobs import baseline_job
            from repro.baseline.spec import synthetic_spec

            poisoned = svc.submit(flip_spec(seed=0), stream=False)
            healthy = [svc.submit(baseline_job(
                synthetic_spec(4, 3), label=f"base{i}"), stream=False)
                for i in range(2)]
            svc.drain(timeout=60.0)
            assert isinstance(poisoned.exception(), JobError)
            assert all(f.exception() is None for f in healthy)
            assert svc.stats()["routes"]["quma"]["quarantined"] == 1


# -- CLI surface --------------------------------------------------------------


class TestCLI:
    def test_exp_retries_recover_under_ambient_chaos(self, monkeypatch,
                                                     capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.3")
        code = main(["exp", "rabi", "--param", "n_rounds=2",
                     "--param", "amplitudes=[0.0, 0.4, 0.8]",
                     "--retries", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "retries recovered:" in out

    def test_exp_exhausted_retries_exit_nonzero_with_quarantine(
            self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        monkeypatch.setenv("REPRO_FAULT_MAX_PER_SITE", "none")
        code = main(["exp", "rabi", "--param", "n_rounds=2",
                     "--param", "amplitudes=[0.0, 0.4]",
                     "--retries", "1"])
        err = capsys.readouterr().err
        assert code == 1
        assert err.startswith("error: ")
        assert "quarantined jobs" in err
        assert "FaultInjected" in err
        assert "Traceback" not in err  # one-line errors, not raw dumps


class TestQuarantineBound:
    """``max_quarantine``: a configurable cap on retained failure reports.

    Failures beyond the cap evict the oldest entries (counted in
    ``quarantine_evicted``) so a pathological sweep cannot grow the
    stats payload without bound.
    """

    def _poison_service(self, max_quarantine=None):
        plan = FaultPlan(seed=1, rate=1.0, max_faults_per_site=None)
        return ExperimentService(backend="serial", faults=plan,
                                 retry=RetryPolicy(max_attempts=2,
                                                   backoff_s=0.0),
                                 max_quarantine=max_quarantine)

    def test_cap_evicts_oldest_and_counts(self):
        with self._poison_service(max_quarantine=2) as svc:
            for i in range(5):
                svc.submit(flip_spec(seed=i, label=f"p{i}"))
            svc.drain()
            stats = svc.stats()["routes"]["quma"]
        assert stats["failed"] == 5
        assert len(stats["quarantine"]) == 2
        assert stats["quarantine_evicted"] == 3
        # Newest entries are the ones retained.
        assert [e["label"] for e in stats["quarantine"]] == ["p3", "p4"]

    def test_default_cap_reports_zero_evictions(self):
        with self._poison_service() as svc:
            svc.submit(flip_spec(seed=0))
            svc.drain()
            stats = svc.stats()["routes"]["quma"]
        assert stats["quarantined"] == 1
        assert stats["quarantine_evicted"] == 0

    def test_invalid_cap_is_a_configuration_error(self):
        with pytest.raises(ConfigurationError, match="max_quarantine"):
            ExperimentService(backend="serial", max_quarantine=0)

    def test_session_passes_the_cap_through(self):
        from repro.session import Session

        with Session(max_quarantine=7) as session:
            stats = session.service.stats()["routes"]["quma"]
            assert stats["quarantine_evicted"] == 0
            route = session.service.dispatcher.routes["quma"]
            assert route.max_quarantine == 7
