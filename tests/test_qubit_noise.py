"""Tests for decoherence channels."""

import numpy as np
import pytest

from repro.qubit import (
    DensityMatrix,
    PAULI_X,
    amplitude_damping_kraus,
    decoherence_kraus,
    phase_damping_kraus,
    rx,
)
from repro.utils.errors import ConfigurationError


def kraus_complete(ops):
    total = sum(k.conj().T @ k for k in ops)
    return np.allclose(total, np.eye(2), atol=1e-12)


def test_amplitude_damping_completeness():
    for gamma in [0.0, 0.1, 0.5, 1.0]:
        assert kraus_complete(amplitude_damping_kraus(gamma))


def test_phase_damping_completeness():
    for lam in [0.0, 0.3, 1.0]:
        assert kraus_complete(phase_damping_kraus(lam))


def test_decoherence_completeness():
    assert kraus_complete(decoherence_kraus(100.0, 18000.0, 12000.0))


def test_t1_population_decay():
    dm = DensityMatrix.ground(1)
    dm.apply_unitary(PAULI_X, (0,))
    t1 = 18000.0
    dt = 5000.0
    dm.apply_kraus(decoherence_kraus(dt, t1, t1), 0)
    assert dm.prob_one(0) == pytest.approx(np.exp(-dt / t1), rel=1e-9)


def test_t2_coherence_decay():
    t1, t2 = 18000.0, 12000.0
    dt = 3000.0
    dm = DensityMatrix.ground(1)
    dm.apply_unitary(rx(np.pi / 2), (0,))
    before = abs(dm.reduced(0)[0, 1])
    dm.apply_kraus(decoherence_kraus(dt, t1, t2), 0)
    after = abs(dm.reduced(0)[0, 1])
    assert after / before == pytest.approx(np.exp(-dt / t2), rel=1e-9)


def test_t2_equal_2t1_limit_allowed():
    # Pure-T1-limited qubit: T2 = 2*T1 has no extra dephasing.
    ops = decoherence_kraus(1000.0, 10000.0, 20000.0)
    assert kraus_complete(ops)


def test_t2_above_2t1_rejected():
    with pytest.raises(ConfigurationError):
        decoherence_kraus(1.0, 10000.0, 20001.0)


def test_zero_dt_is_identity():
    ops = decoherence_kraus(0.0, 100.0, 100.0)
    dm = DensityMatrix.ground(1)
    dm.apply_unitary(rx(0.4), (0,))
    before = dm.data.copy()
    dm.apply_kraus(ops, 0)
    assert np.allclose(dm.data, before)


def test_channel_composes_over_time():
    """Applying dt then dt equals applying 2*dt (semigroup property)."""
    t1, t2 = 18000.0, 12000.0
    a = DensityMatrix.ground(1)
    a.apply_unitary(rx(1.1), (0,))
    b = a.copy()
    a.apply_kraus(decoherence_kraus(400.0, t1, t2), 0)
    a.apply_kraus(decoherence_kraus(400.0, t1, t2), 0)
    b.apply_kraus(decoherence_kraus(800.0, t1, t2), 0)
    assert np.allclose(a.data, b.data, atol=1e-12)


def test_state_stays_physical_under_decoherence():
    dm = DensityMatrix.ground(1)
    dm.apply_unitary(rx(2.2), (0,))
    for _ in range(10):
        dm.apply_kraus(decoherence_kraus(1000.0, 18000.0, 12000.0), 0)
        assert dm.is_physical()


def test_negative_dt_rejected():
    with pytest.raises(ValueError):
        decoherence_kraus(-1.0, 100.0, 100.0)


def test_gamma_bounds_checked():
    with pytest.raises(ValueError):
        amplitude_damping_kraus(1.5)
    with pytest.raises(ValueError):
        phase_damping_kraus(-0.1)


def test_superop_matches_kraus_channel():
    from repro.qubit.noise import decoherence_superop

    dm_kraus = DensityMatrix.ground(1)
    dm_kraus.apply_unitary(rx(0.9), (0,))
    dm_super = dm_kraus.copy()
    ops = decoherence_kraus(5000.0, 18000.0, 12000.0)
    dm_kraus.apply_kraus(list(ops), 0)
    dm_super.apply_superop(decoherence_superop(5000.0, 18000.0, 12000.0))
    assert np.allclose(dm_kraus.data, dm_super.data, atol=1e-14)
    assert dm_super.is_physical()


def test_superop_is_cached():
    from repro.qubit.noise import decoherence_superop

    assert decoherence_superop(100.0, 1e4, 8e3) is decoherence_superop(
        100.0, 1e4, 8e3)


def test_superop_fixes_ground_state_exactly():
    """|0><0| must be a bit-exact fixed point of idle decoherence — the
    round-replay engine's warm start rests on it."""
    from repro.qubit.noise import decoherence_superop

    dm = DensityMatrix.ground(1)
    dm.apply_superop(decoherence_superop(200000.0, 18000.0, 12000.0))
    expected = np.zeros((2, 2), dtype=complex)
    expected[0, 0] = 1.0
    assert np.array_equal(dm.data, expected)
