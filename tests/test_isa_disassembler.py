"""Tests for the disassembler (including assemble/disassemble round trips)."""

from repro.isa import assemble, disassemble, disassemble_program
from repro.isa.encoding import encode_program

SOURCE = """
    mov r15, 40000
    mov r1, 0
loop:
    QNopReg r15
    Pulse {q2}, I
    Wait 4
    Pulse (q0, X180), ({q1, q2}, Y90)
    MPG {q2}, 300
    MD {q2}
    MD {q2}, r7
    Apply X180, q0
    Measure q0, r7
    load r9, r3[0]
    add r9, r9, r7
    store r9, r3[0]
    addi r1, r1, 1
    bne r1, r2, loop
    halt
"""


def test_disassemble_single_instructions():
    prog = assemble(SOURCE)
    texts = [disassemble(i) for i in prog.instructions]
    assert texts[0] == "mov r15, 40000"
    assert "Pulse {q2}, I" in texts
    assert "Pulse ({q0}, X180), ({q1, q2}, Y90)" in texts
    assert "MPG {q2}, 300" in texts
    assert "MD {q2}" in texts
    assert "MD {q2}, r7" in texts
    assert "Apply X180, q0" in texts
    assert "Measure q0, r7" in texts
    assert "QNopReg r15" in texts


def test_reassembly_fixed_point():
    """asm -> text -> asm must produce the identical binary."""
    prog = assemble(SOURCE)
    text = disassemble_program(prog)
    prog2 = assemble(text)
    assert encode_program(prog) == encode_program(prog2)


def test_labels_rendered_at_position():
    prog = assemble("start:\nnop\njmp start")
    text = disassemble_program(prog)
    lines = [ln.strip() for ln in text.splitlines()]
    assert lines[0] == "start:"
    assert lines[1] == "nop"
    assert lines[2] == "jmp start"


def test_qcall_disassembles_as_mnemonic():
    prog = assemble("CNOT q0, q1", uprogs=["CNOT"])
    assert disassemble(prog.instructions[0]) == "CNOT q0, q1"
