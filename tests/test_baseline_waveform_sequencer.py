"""Tests for the executable full-waveform baseline (Section 4.2.2)."""

import numpy as np
import pytest

from repro.baseline import WaveformSequencer
from repro.core import MachineConfig
from repro.experiments.allxy import ALLXY_PAIRS, rescale_with_calibration_points
from repro.pulse import PulseCalibration
from repro.utils.errors import ConfigurationError

NAMES = {"i": "I", "x": "X180", "y": "Y180", "x90": "X90", "y90": "Y90"}
ALLXY_SEQUENCES = [tuple(NAMES[g] for g in pair) for pair in ALLXY_PAIRS]


def make_sequencer(**kwargs):
    return WaveformSequencer(MachineConfig(qubits=(2,), **kwargs))


def test_upload_builds_one_waveform_per_combination():
    seq = make_sequencer()
    seq.upload(ALLXY_SEQUENCES)
    result_memory = seq.memory_bytes()
    # 21 waveforms x 2 gates x 20 ns x 2 channels x 12 bits = 2520 B.
    assert result_memory == 2520.0


def test_x180_waveform_flips_qubit():
    seq = make_sequencer()
    seq.upload([("X180",)])
    result = seq.run(n_rounds=4)
    ro = seq.readout_calibration
    p1 = (result.averages[0] - ro.s_ground) / (ro.s_excited - ro.s_ground)
    assert p1 > 0.9


def test_identity_waveform_stays_ground():
    seq = make_sequencer()
    seq.upload([("I", "I")])
    result = seq.run(n_rounds=4)
    ro = seq.readout_calibration
    p1 = (result.averages[0] - ro.s_ground) / (ro.s_excited - ro.s_ground)
    assert abs(p1) < 0.1


def test_run_without_upload_rejected():
    with pytest.raises(ConfigurationError):
        make_sequencer().run()


def test_unknown_op_rejected():
    seq = make_sequencer()
    with pytest.raises(ConfigurationError):
        seq.upload([("NOSUCH",)])


def test_multi_qubit_config_rejected():
    with pytest.raises(ConfigurationError):
        WaveformSequencer(MachineConfig(qubits=(0, 1)))


def test_recalibration_reupload_cost():
    seq = make_sequencer()
    seq.upload(ALLXY_SEQUENCES)
    before = seq.upload_bytes_total
    pushed = seq.reupload_for_recalibration(
        "X180", PulseCalibration(amplitude_error=0.01))
    # X180 appears in pairs 1,3,4,9(x-y?)... — count from the table:
    expected_slots = sum(len(s) for s in ALLXY_SEQUENCES if "X180" in s)
    assert pushed == expected_slots * 60.0
    assert seq.upload_bytes_total == before + pushed
    # Far more than QuMA's single 60-byte LUT entry.
    assert pushed > 10 * 60.0


@pytest.mark.slow
def test_allxy_staircase_via_waveform_method():
    """The conventional method reproduces the same physics: the AllXY
    staircase appears, at 6x the waveform memory."""
    seq = make_sequencer(trace_enabled=False)
    # Each combination once (the sequencer measures every waveform); run
    # the 21 combinations twice per round by uploading doubled sequences.
    doubled = [s for s in ALLXY_SEQUENCES for _ in range(2)]
    seq.upload(doubled)
    result = seq.run(n_rounds=48)
    fidelity = rescale_with_calibration_points(result.averages)
    assert fidelity[:10].mean() < 0.15
    assert abs(fidelity[10:34].mean() - 0.5) < 0.12
    assert fidelity[34:].mean() > 0.85
    assert result.memory_bytes == 5040.0  # doubled: 2 x 2520 B
