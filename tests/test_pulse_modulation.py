"""Tests for SSB modulation phase bookkeeping (Section 4.2.3)."""

import numpy as np
import pytest

from repro.pulse import demodulate, gaussian, modulate, ssb_phase

F_SSB = -50e6  # the paper's -50 MHz single-sideband modulation


def test_phase_zero_at_t0_zero():
    assert ssb_phase(F_SSB, 0) == pytest.approx(0.0)


def test_phase_periodic_in_20ns():
    # 50 MHz -> 20 ns period: triggering on the SSB grid keeps phase 0.
    for t0 in [0, 20, 40, 200000]:
        assert ssb_phase(F_SSB, t0) == pytest.approx(0.0, abs=1e-9)


def test_5ns_shift_gives_quarter_turn():
    # Section 4.2.3: a 5 ns delay turns an x rotation into a y rotation.
    phi = ssb_phase(F_SSB, 5)
    assert phi == pytest.approx(np.pi / 2)


def test_10ns_shift_gives_half_turn():
    assert ssb_phase(F_SSB, 10) == pytest.approx(np.pi)


def test_phase_sign_convention():
    # Positive f_ssb with positive t0 gives negative (wrapped) phase.
    phi = ssb_phase(50e6, 5)
    assert phi == pytest.approx(3 * np.pi / 2)


def test_modulate_preserves_magnitude():
    env = gaussian(20, 5.0, 0.7)
    mod = modulate(env, F_SSB)
    assert np.allclose(np.abs(mod), np.abs(env))


def test_modulate_then_demodulate_recovers_envelope():
    env = gaussian(20, 5.0, 0.7)
    mod = modulate(env, F_SSB)
    rec = demodulate(mod, F_SSB)
    assert np.allclose(rec, env, atol=1e-12)


def test_demodulate_uses_absolute_time():
    env = gaussian(20, 5.0, 0.7)
    mod = modulate(env, F_SSB)
    # Demodulating as if the record started 5 ns later rotates by pi/2.
    rec = demodulate(mod, F_SSB, t0_ns=5)
    expected_phase = np.exp(-2j * np.pi * F_SSB * 5e-9)
    assert np.allclose(rec, env * expected_phase, atol=1e-12)
