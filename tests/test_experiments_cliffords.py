"""Tests for the single-qubit Clifford group substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.cliffords import clifford_group
from repro.qubit import allclose_up_to_phase, rx, ry

GROUP = clifford_group()


def test_group_has_24_elements():
    assert len(GROUP) == 24


def test_identity_has_empty_decomposition():
    ident = GROUP[GROUP.identity_index]
    assert ident.pulses == ()


def test_decompositions_reproduce_unitaries():
    pulse_map = {
        "X180": rx(np.pi), "X90": rx(np.pi / 2), "mX90": rx(-np.pi / 2),
        "Y180": ry(np.pi), "Y90": ry(np.pi / 2), "mY90": ry(-np.pi / 2),
    }
    for c in GROUP.elements:
        u = np.eye(2, dtype=complex)
        for name in c.pulses:
            u = pulse_map[name] @ u
        assert allclose_up_to_phase(u, c.unitary)


def test_decompositions_at_most_3_pulses():
    assert max(len(c.pulses) for c in GROUP.elements) <= 3


def test_average_pulses_per_clifford_near_literature():
    # Standard single-qubit XY decompositions average ~1.875 pulses.
    avg = GROUP.average_pulses_per_clifford()
    assert 1.5 < avg < 2.2


def test_group_closed_under_composition():
    for a in range(24):
        for b in range(24):
            assert 0 <= GROUP.compose(a, b) < 24


def test_inverse_property():
    for a in range(24):
        inv = GROUP.inverse(a)
        assert GROUP.compose(a, inv) == GROUP.identity_index
        assert GROUP.compose(inv, a) == GROUP.identity_index


def test_compose_order_convention():
    x90 = GROUP.index_of(rx(np.pi / 2))
    x180 = GROUP.index_of(rx(np.pi))
    # Applying x90 then x90 equals x180.
    assert GROUP.compose(x90, x90) == x180


def test_index_of_rejects_non_clifford():
    with pytest.raises(KeyError):
        GROUP.index_of(rx(0.3))


def test_sequence_product_and_recovery():
    seq = [3, 7, 11, 20]
    product = GROUP.sequence_product(seq)
    recovery = GROUP.recovery(seq)
    assert GROUP.compose(product, recovery) == GROUP.identity_index


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 23), min_size=1, max_size=8))
def test_recovery_returns_to_identity_property(seq):
    """For any sequence, product followed by recovery is the identity —
    also verified at the unitary level."""
    recovery = GROUP.recovery(seq)
    u = np.eye(2, dtype=complex)
    for idx in seq:
        u = GROUP[idx].unitary @ u
    u = GROUP[recovery].unitary @ u
    assert allclose_up_to_phase(u, np.eye(2))


@settings(max_examples=50, deadline=None)
@given(st.integers(0, 23), st.integers(0, 23))
def test_composition_matches_matrix_product(a, b):
    composed = GROUP.compose(a, b)
    expected = GROUP[b].unitary @ GROUP[a].unitary
    assert allclose_up_to_phase(GROUP[composed].unitary, expected)
