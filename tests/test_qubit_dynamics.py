"""Tests for pulse-envelope integration (the SSB timing physics)."""

import numpy as np
import pytest

from repro.pulse import PulseCalibration, build_single_qubit_lut, gaussian, ssb_phase
from repro.qubit import (
    PulseUnitaryCache,
    allclose_up_to_phase,
    integrate_envelope,
    rx,
    ry,
)

CAL = PulseCalibration()
LUT = build_single_qubit_lut(CAL)
F_SSB = -50e6


def test_x180_pulse_integrates_to_rx_pi():
    u = integrate_envelope(LUT.lookup(1).samples, CAL.kappa)
    assert allclose_up_to_phase(u, rx(np.pi), atol=1e-6)


def test_x90_pulse_integrates_to_rx_half_pi():
    u = integrate_envelope(LUT.lookup(2).samples, CAL.kappa)
    assert allclose_up_to_phase(u, rx(np.pi / 2), atol=1e-6)


def test_y180_pulse_integrates_to_ry_pi():
    u = integrate_envelope(LUT.lookup(4).samples, CAL.kappa)
    assert allclose_up_to_phase(u, ry(np.pi), atol=1e-6)


def test_minus_rotations():
    u = integrate_envelope(LUT.lookup(3).samples, CAL.kappa)
    assert allclose_up_to_phase(u, rx(-np.pi / 2), atol=1e-6)
    u = integrate_envelope(LUT.lookup(6).samples, CAL.kappa)
    assert allclose_up_to_phase(u, ry(-np.pi / 2), atol=1e-6)


def test_unitarity():
    u = integrate_envelope(LUT.lookup(1).samples, CAL.kappa, phase0=0.3,
                           detuning_hz=1e6)
    assert np.allclose(u @ u.conj().T, np.eye(2), atol=1e-12)


def test_zero_envelope_is_identity():
    u = integrate_envelope(np.zeros(20, dtype=complex), CAL.kappa)
    assert np.allclose(u, np.eye(2))


def test_5ns_ssb_phase_turns_x_into_y():
    """The paper's Section 4.2.3 example, end to end."""
    phase = ssb_phase(F_SSB, 5)  # pulse played 5 ns late
    u = integrate_envelope(LUT.lookup(1).samples, CAL.kappa, phase0=phase)
    assert allclose_up_to_phase(u, ry(np.pi), atol=1e-6)


def test_20ns_ssb_phase_preserves_x():
    phase = ssb_phase(F_SSB, 20)  # full SSB period: no phase error
    u = integrate_envelope(LUT.lookup(1).samples, CAL.kappa, phase0=phase)
    assert allclose_up_to_phase(u, rx(np.pi), atol=1e-6)


def test_10ns_ssb_phase_inverts_axis():
    phase = ssb_phase(F_SSB, 10)
    u = integrate_envelope(LUT.lookup(2).samples, CAL.kappa, phase0=phase)
    assert allclose_up_to_phase(u, rx(-np.pi / 2), atol=1e-6)


def test_amplitude_error_overrotates():
    bad = build_single_qubit_lut(PulseCalibration(amplitude_error=0.05))
    u = integrate_envelope(bad.lookup(1).samples, CAL.kappa)
    # Overrotation by 5%: |1>-population after the pulse < 1.
    p1 = abs((u @ np.array([1, 0], dtype=complex))[1]) ** 2
    assert p1 == pytest.approx(np.sin(1.05 * np.pi / 2) ** 2, abs=1e-4)


def test_detuning_tilts_axis():
    u = integrate_envelope(LUT.lookup(1).samples, CAL.kappa, detuning_hz=20e6)
    p1 = abs((u @ np.array([1, 0], dtype=complex))[1]) ** 2
    assert p1 < 0.999  # detuned pulse no longer fully inverts


def test_ramsey_phase_accumulation_via_detuning():
    """Free evolution under detuning: x90 - idle - x90 fringes."""
    detuning = 1e6  # 1 MHz
    idle_ns = 250  # quarter period -> the two pi/2 pulses add to ~pi/2 net
    u90 = rx(np.pi / 2)
    # Idle evolution = rz(2*pi*detuning*t).
    from repro.qubit import rz

    idle = rz(2 * np.pi * detuning * idle_ns * 1e-9)
    u = u90 @ idle @ u90
    p1 = abs((u @ np.array([1, 0], dtype=complex))[1]) ** 2
    assert p1 == pytest.approx(0.5, abs=1e-6)


def test_cache_hits_for_repeated_pulses():
    cache = PulseUnitaryCache(CAL.kappa)
    w = LUT.lookup(1)
    u1 = cache.unitary(w, 0.0)
    u2 = cache.unitary(w, 0.0)
    assert cache.hits == 1 and cache.misses == 1
    assert u1 is u2


def test_cache_distinguishes_phases():
    cache = PulseUnitaryCache(CAL.kappa)
    w = LUT.lookup(1)
    cache.unitary(w, 0.0)
    cache.unitary(w, np.pi / 2)
    assert cache.misses == 2


def test_cache_invalidated_on_different_content():
    cache = PulseUnitaryCache(CAL.kappa)
    a = build_single_qubit_lut(PulseCalibration()).lookup(1)
    b = build_single_qubit_lut(PulseCalibration(amplitude_error=0.1)).lookup(1)
    ua = cache.unitary(a, 0.0)
    ub = cache.unitary(b, 0.0)
    assert not np.allclose(ua, ub)


def test_gaussian_area_theorem():
    """Rotation angle equals kappa times envelope area, for small steps."""
    env = gaussian(40, 10.0, 0.5)
    u = integrate_envelope(env, 0.2)
    angle = 2 * np.arccos(np.clip(abs(u[0, 0]), -1, 1))
    expected = 0.2 * np.sum(env.real)
    assert angle == pytest.approx(expected, rel=1e-9)


def test_vectorized_matches_scalar_reference_loop():
    """The log-depth pairwise product agrees with the historical
    per-sample Python loop to float accuracy."""
    from repro.qubit.gates import su2_rotation

    def reference(samples, kappa, phase0=0.0, detuning_hz=0.0):
        drive = np.asarray(samples, dtype=complex) * np.exp(1j * phase0)
        wz = 2.0 * np.pi * detuning_hz * 1e-9
        u = np.eye(2, dtype=complex)
        for d in drive:
            wx, wy = kappa * d.real, kappa * d.imag
            theta = np.sqrt(wx * wx + wy * wy + wz * wz)
            if theta == 0.0:
                continue
            u = su2_rotation(wx / theta, wy / theta, wz / theta, theta) @ u
        return u

    rng = np.random.default_rng(11)
    for detuning in (0.0, 0.4e6):
        for phase in (0.0, 0.7):
            samples = rng.normal(size=33) + 1j * rng.normal(size=33)
            samples[5] = 0.0  # inactive sample must be skipped either way
            fast = integrate_envelope(samples, 0.21, phase, detuning)
            slow = reference(samples, 0.21, phase, detuning)
            assert np.allclose(fast, slow, atol=1e-13)


def test_vectorized_odd_and_tiny_lengths():
    for n in (1, 2, 3, 5, 8):
        samples = np.linspace(0.1, 0.4, n)
        u = integrate_envelope(samples, 0.3)
        assert np.allclose(u @ u.conj().T, np.eye(2), atol=1e-12)


def test_ssb_phase_round_periodicity():
    """Integer-grid triggers one modulation period apart get bit-identical
    phases — the property the round-replay engine verifies per run."""
    period_ns = 20  # 50 MHz
    for t in (0, 5, 600220, 9001900, 123456785):
        assert ssb_phase(F_SSB, t) == ssb_phase(F_SSB, t + period_ns)
        assert ssb_phase(F_SSB, t) == ssb_phase(F_SSB, t + 420084 * period_ns)
