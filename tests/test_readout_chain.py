"""Tests for the readout chain: resonator, ADC, weights, MDU, calibration."""

import numpy as np
import pytest

from repro.readout import (
    DataCollectionUnit,
    MeasurementDiscriminationUnit,
    ReadoutParams,
    adc_quantize,
    calibrate_readout,
    integrate,
    matched_filter_weights,
    transmitted_trace,
)
from repro.readout.resonator import mean_trace
from repro.utils import derive_rng
from repro.utils.errors import ConfigurationError

PARAMS = ReadoutParams()
DURATION = 1500  # 300 cycles, the paper's AllXY measurement pulse


def test_trace_length_and_determinism():
    rng1 = derive_rng(1, "ro")
    rng2 = derive_rng(1, "ro")
    a = transmitted_trace(PARAMS, 0, DURATION, 0, rng1)
    b = transmitted_trace(PARAMS, 0, DURATION, 0, rng2)
    assert len(a) == DURATION
    assert np.array_equal(a, b)


def test_traces_state_dependent():
    t0 = mean_trace(PARAMS, 0, DURATION, 0)
    t1 = mean_trace(PARAMS, 1, DURATION, 0)
    assert not np.allclose(t0, t1)


def test_trace_without_pulse_is_noise_only():
    rng = derive_rng(2, "ro")
    t = transmitted_trace(PARAMS, 1, DURATION, 0, rng, pulse_on=False)
    assert abs(np.mean(t)) < 0.02


def test_ringup_suppresses_early_signal():
    t = np.abs(mean_trace(PARAMS, 0, DURATION, 0))
    early = np.max(t[:20])
    late = np.max(t[-300:])
    assert early < 0.5 * late


def test_if_oscillation_period():
    # 40 MHz -> 25 ns period; autocorrelation of the steady-state tail
    # peaks at lag 25.
    t = mean_trace(PARAMS, 0, DURATION, 0)[-500:]
    lags = [np.dot(t[:-lag], t[lag:]) / (len(t) - lag) for lag in range(1, 40)]
    assert int(np.argmax(lags)) + 1 == 25


def test_adc_quantize_grid():
    x = np.array([0.0, 0.1, -0.5, 2.0, -2.0])
    q = adc_quantize(x, bits=8)
    step = 1.0 / 128
    assert np.allclose(q / step, np.round(q / step))
    assert q.max() <= 1.0 - step
    assert q.min() >= -1.0


def test_adc_monotone():
    x = np.linspace(-1.2, 1.2, 101)
    q = adc_quantize(x, bits=8)
    assert np.all(np.diff(q) >= 0)


def test_matched_filter_unit_peak():
    w = matched_filter_weights(mean_trace(PARAMS, 0, DURATION, 0),
                               mean_trace(PARAMS, 1, DURATION, 0))
    assert np.max(np.abs(w)) == pytest.approx(1.0)


def test_matched_filter_identical_traces_rejected():
    t = mean_trace(PARAMS, 0, DURATION, 0)
    with pytest.raises(ValueError):
        matched_filter_weights(t, t)


def test_integrate_truncates_to_common_length():
    assert integrate(np.ones(10), np.ones(5)) == pytest.approx(5.0)


def test_calibration_separates_states():
    cal = calibrate_readout(PARAMS, DURATION, n_shots=100, seed=3)
    assert cal.s_excited > cal.threshold > cal.s_ground
    assert cal.assignment_fidelity > 0.95


def test_mdu_discriminates_both_states():
    cal = calibrate_readout(PARAMS, DURATION, n_shots=100, seed=3)
    mdu = MeasurementDiscriminationUnit(qubit=2, calibration=cal)
    rng = derive_rng(4, "shots")
    correct = 0
    n = 50
    for outcome in (0, 1):
        for _ in range(n):
            trace = transmitted_trace(PARAMS, outcome, DURATION, 0, rng)
            res = mdu.discriminate(trace, trigger_ns=0)
            correct += res.value == outcome
    assert correct / (2 * n) > 0.95


def test_mdu_latency_under_1us_excluding_integration():
    cal = calibrate_readout(PARAMS, DURATION, n_shots=10, seed=3)
    mdu = MeasurementDiscriminationUnit(qubit=0, calibration=cal)
    # Section 5.1.2: hardware discrimination latency < 1 us beyond the
    # integration window itself.
    assert mdu.latency_ns(DURATION) - DURATION < 1000


def test_mdu_result_fields():
    cal = calibrate_readout(PARAMS, DURATION, n_shots=10, seed=3)
    mdu = MeasurementDiscriminationUnit(qubit=2, calibration=cal)
    rng = derive_rng(5, "r")
    res = mdu.discriminate(transmitted_trace(PARAMS, 1, DURATION, 0, rng), 100)
    assert res.qubit == 2
    assert res.trigger_ns == 100
    assert res.ready_ns == 100 + mdu.latency_ns(DURATION)


def test_data_collection_averaging():
    dcu = DataCollectionUnit(k_points=3)
    for round_ in range(4):
        for i in range(3):
            dcu.record(10.0 * i + round_)
    avg = dcu.averages()
    assert np.allclose(avg, [1.5, 11.5, 21.5])
    assert dcu.rounds_completed == 4


def test_data_collection_ignores_partial_round():
    dcu = DataCollectionUnit(k_points=2)
    dcu.record(1.0)
    dcu.record(2.0)
    dcu.record(99.0)  # partial
    assert np.allclose(dcu.averages(), [1.0, 2.0])


def test_data_collection_empty_raises():
    with pytest.raises(ConfigurationError):
        DataCollectionUnit(k_points=2).averages()
    with pytest.raises(ConfigurationError):
        DataCollectionUnit(k_points=0)


def test_calibration_deterministic_given_seed():
    a = calibrate_readout(PARAMS, DURATION, n_shots=20, seed=9)
    b = calibrate_readout(PARAMS, DURATION, n_shots=20, seed=9)
    assert a.threshold == b.threshold
    assert np.array_equal(a.weights, b.weights)
