"""Tests for the quantum microinstruction buffer."""

import pytest

from repro.core import MachineConfig
from repro.core.qmb import QuantumMicroinstructionBuffer
from repro.core.timing import TimingControlUnit
from repro.isa import DEFAULT_OPERATIONS, Md, Mpg, Movi, Pulse, Wait
from repro.sim import Simulator
from repro.utils.errors import ConfigurationError


def make_qmb(capacity=8, qubits=(2,), flux_pairs=(), auto_start=True):
    sim = Simulator()
    config = MachineConfig(qubits=qubits, flux_pairs=flux_pairs,
                           queue_capacity=capacity, td_auto_start=auto_start)
    tcu = TimingControlUnit(sim, capacity=capacity)
    for name in ("pulse", "mpg", "md"):
        tcu.add_event_queue(name, lambda e: None)
    return sim, tcu, QuantumMicroinstructionBuffer(tcu, config, DEFAULT_OPERATIONS.copy())


def test_wait_creates_time_point_with_fresh_label():
    _, tcu, qmb = make_qmb()
    assert qmb.accept(Wait(interval=40000))
    assert qmb.accept(Wait(interval=4))
    snap = tcu.snapshot()
    assert snap["timing"] == ["(4, 2)", "(40000, 1)"]


def test_pulse_attaches_to_current_label():
    _, tcu, qmb = make_qmb()
    qmb.accept(Wait(interval=40000))
    qmb.accept(Pulse.single((2,), "I"))
    qmb.accept(Wait(interval=4))
    qmb.accept(Pulse.single((2,), "I"))
    snap = tcu.snapshot()
    assert snap["pulse"] == ["(I, 2)", "(I, 1)"]


def test_allxy_queue_shape():
    """Reproduce the Table 2 queue structure for two AllXY rounds."""
    _, tcu, qmb = make_qmb(capacity=16)
    for op in ("I", "X180"):
        qmb.accept(Wait(interval=40000))
        qmb.accept(Pulse.single((2,), op))
        qmb.accept(Wait(interval=4))
        qmb.accept(Pulse.single((2,), op))
        qmb.accept(Wait(interval=4))
        qmb.accept(Mpg(qubits=(2,), duration=300))
        qmb.accept(Md(qubits=(2,), rd=7))
    snap = tcu.snapshot()
    assert snap["timing"] == ["(4, 6)", "(4, 5)", "(40000, 4)",
                              "(4, 3)", "(4, 2)", "(40000, 1)"]
    assert snap["pulse"] == ["(X180, 5)", "(X180, 4)", "(I, 2)", "(I, 1)"]
    assert snap["mpg"] == ["(6)", "(3)"]
    assert snap["md"] == ["(r7, 6)", "(r7, 3)"]


def test_multi_qubit_pulse_one_event_per_qubit():
    _, tcu, qmb = make_qmb(qubits=(0, 1))
    qmb.accept(Wait(interval=4))
    qmb.accept(Pulse.single((0, 1), "X180"))
    assert len(tcu.event_queues["pulse"]) == 2
    channels = {e.channel for e in tcu.event_queues["pulse"].entries}
    assert channels == {"uop0", "uop1"}


def test_cz_routes_to_flux_channel():
    _, tcu, qmb = make_qmb(qubits=(0, 1), flux_pairs=((0, 1),))
    qmb.accept(Wait(interval=4))
    qmb.accept(Pulse.single((0, 1), "CZ"))
    entries = list(tcu.event_queues["pulse"].entries)
    assert len(entries) == 1
    assert entries[0].channel == "uop_flux0"
    assert entries[0].qubits == (0, 1)


def test_cz_without_flux_wiring_rejected():
    _, _, qmb = make_qmb(qubits=(0, 1))
    qmb.accept(Wait(interval=4))
    with pytest.raises(ConfigurationError):
        qmb.accept(Pulse.single((0, 1), "CZ"))


def test_unwired_qubit_rejected():
    _, _, qmb = make_qmb(qubits=(2,))
    qmb.accept(Wait(interval=4))
    with pytest.raises(ConfigurationError):
        qmb.accept(Pulse.single((5,), "I"))


def test_event_before_wait_gets_implicit_time_point():
    _, tcu, qmb = make_qmb(auto_start=False)
    qmb.accept(Pulse.single((2,), "X180"))
    snap = tcu.snapshot()
    assert snap["timing"] == ["(0, 1)"]
    assert snap["pulse"] == ["(X180, 1)"]


def test_backpressure_on_full_timing_queue():
    _, tcu, qmb = make_qmb(capacity=2, auto_start=False)
    assert qmb.accept(Wait(interval=4))
    assert qmb.accept(Wait(interval=4))
    assert not qmb.accept(Wait(interval=4))  # full -> rejected, no side effects
    assert len(tcu.timing_queue) == 2


def test_backpressure_on_full_event_queue():
    _, tcu, qmb = make_qmb(capacity=2, auto_start=False)
    qmb.accept(Wait(interval=4))
    assert qmb.accept(Pulse.single((2,), "I"))
    assert qmb.accept(Pulse.single((2,), "I"))
    assert not qmb.accept(Pulse.single((2,), "I"))
    assert len(tcu.event_queues["pulse"]) == 2


def test_auto_start_on_first_push():
    _, tcu, qmb = make_qmb(auto_start=True)
    assert not tcu.started
    qmb.accept(Wait(interval=4))
    assert tcu.started


def test_manual_start_mode():
    _, tcu, qmb = make_qmb(auto_start=False)
    qmb.accept(Wait(interval=4))
    assert not tcu.started


def test_classical_instruction_rejected():
    _, _, qmb = make_qmb()
    with pytest.raises(ConfigurationError):
        qmb.accept(Movi(rd=0, imm=0))


def test_md_without_register():
    _, tcu, qmb = make_qmb()
    qmb.accept(Wait(interval=4))
    qmb.accept(Md(qubits=(2,)))
    assert tcu.snapshot()["md"] == ["(1)"]
