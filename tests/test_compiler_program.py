"""Tests for the OpenQL-like program builder and decomposition."""

import pytest

from repro.compiler import OpKind, QuantumProgram, decompose
from repro.utils.errors import ConfigurationError


def test_kernel_builds_ops():
    p = QuantumProgram("t", qubits=(2,))
    k = p.new_kernel("k")
    k.prepz(2).x(2).y90(2).measure(2)
    kinds = [op.kind for op in k.ops]
    assert kinds == [OpKind.PREPZ, OpKind.PULSE, OpKind.PULSE, OpKind.MEASURE]
    assert k.ops[1].name == "X180"
    assert k.ops[2].name == "Y90"


def test_gate_aliases():
    p = QuantumProgram("t", qubits=(0,))
    k = p.new_kernel("k")
    k.gate("i", 0).gate("X90", 0).gate("mx90", 0).gate("MY90", 0)
    assert [op.name for op in k.ops] == ["I", "X90", "mX90", "mY90"]


def test_unknown_gate_rejected():
    k = QuantumProgram("t", qubits=(0,)).new_kernel("k")
    with pytest.raises(ConfigurationError):
        k.gate("t_gate", 0)


def test_unowned_qubit_rejected():
    k = QuantumProgram("t", qubits=(0,)).new_kernel("k")
    with pytest.raises(ConfigurationError):
        k.x(3)


def test_cz_arity():
    k = QuantumProgram("t", qubits=(0, 1)).new_kernel("k")
    with pytest.raises(ConfigurationError):
        k.gate("cz", 0)
    k.cz(0, 1)
    assert k.ops[0].qubits == (0, 1)


def test_wait_validation():
    k = QuantumProgram("t", qubits=(0,)).new_kernel("k")
    with pytest.raises(ConfigurationError):
        k.wait(0)
    k.wait(10)
    assert k.ops[0].duration_cycles == 10


def test_measure_with_register():
    k = QuantumProgram("t", qubits=(0,)).new_kernel("k")
    k.measure(0, rd=7)
    assert k.ops[0].rd == 7


def test_measure_count():
    p = QuantumProgram("t", qubits=(0,))
    p.new_kernel("a").measure(0)
    p.new_kernel("b").measure(0).measure(0)
    assert p.measure_count() == 3


def test_empty_program_rejected():
    with pytest.raises(ConfigurationError):
        QuantumProgram("t", qubits=())


def test_decompose_cnot():
    p = QuantumProgram("t", qubits=(0, 1))
    k = p.new_kernel("k")
    k.cnot(0, 1)
    out = decompose(k.ops)
    assert [(op.name, op.qubits) for op in out] == [
        ("mY90", (1,)), ("CZ", (0, 1)), ("Y90", (1,))]


def test_decompose_h_and_z():
    p = QuantumProgram("t", qubits=(0,))
    k = p.new_kernel("k")
    k.h(0).z(0)
    out = decompose(k.ops)
    assert [op.name for op in out] == ["Y90", "X180", "Y180", "X180"]


def test_decompose_leaves_primitives():
    p = QuantumProgram("t", qubits=(0,))
    k = p.new_kernel("k")
    k.prepz(0).x(0).measure(0)
    out = decompose(k.ops)
    assert [op.kind for op in out] == [OpKind.PREPZ, OpKind.PULSE, OpKind.MEASURE]
