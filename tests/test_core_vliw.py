"""Tests for the VLIW issue extension (Section 9 future work)."""

import pytest

from repro.core import MachineConfig, QuMA
from repro.utils.errors import ConfigurationError


def run_with_width(source, width, **kwargs):
    machine = QuMA(MachineConfig(qubits=(2,), issue_width=width, **kwargs))
    machine.load(source)
    result = machine.run()
    return machine, result


CLASSICAL = "\n".join(["nop"] * 16) + "\nhalt"


def test_width_must_be_positive():
    with pytest.raises(ConfigurationError):
        MachineConfig(qubits=(2,), issue_width=0)


def test_wider_issue_finishes_classical_code_faster():
    _, w1 = run_with_width(CLASSICAL, 1)
    _, w4 = run_with_width(CLASSICAL, 4)
    assert w1.completed and w4.completed
    assert w1.instructions_executed == w4.instructions_executed == 17
    assert w4.duration_ns < w1.duration_ns / 2


def test_same_architectural_result_any_width():
    source = """
        mov r1, 0
        mov r2, 10
    loop:
        addi r1, r1, 1
        bne r1, r2, loop
        mov r3, 77
        halt
    """
    m1, r1 = run_with_width(source, 1)
    m4, r4 = run_with_width(source, 4)
    assert m1.registers.read(1) == m4.registers.read(1) == 10
    assert m1.registers.read(3) == m4.registers.read(3) == 77


def test_bundle_breaks_at_taken_branch():
    """A taken branch ends the slot, so instructions after it in the same
    bundle are not executed early (no speculative issue)."""
    source = """
        mov r1, 1
        mov r2, 1
        beq r1, r2, target
        mov r9, 99
        mov r9, 98
    target:
        halt
    """
    machine, result = run_with_width(source, 8)
    assert machine.registers.read(9) == 0
    assert result.completed


def test_quantum_semantics_identical_across_widths():
    source = """
        Wait 40
        Pulse {q2}, X90
        Wait 4
        Pulse {q2}, X90
        Wait 4
        MPG {q2}, 300
        MD {q2}, r7
        halt
    """
    m1, _ = run_with_width(source, 1)
    m4, _ = run_with_width(source, 4)
    t1 = [r.time - m1.tcu.td_to_ns(0)
          for r in m1.trace.filter(kind="pulse_start")]
    t4 = [r.time - m4.tcu.td_to_ns(0)
          for r in m4.trace.filter(kind="pulse_start")]
    # Output timing relative to T_D start is identical; only the
    # instruction-domain speed changed.
    assert t1 == t4
    assert m1.registers.read(7) == m4.registers.read(7) == 1


def test_vliw_relieves_underrun_pressure():
    """Section 6/9: a wider issue keeps queues ahead of T_D where a
    single stream underruns."""
    body = "\n".join("Wait 4\nPulse {q2}, X90" for _ in range(20)) + "\nhalt"

    def violations(width):
        machine = QuMA(MachineConfig(qubits=(2,), issue_width=width,
                                     classical_issue_ns=35,
                                     trace_enabled=False))
        machine.load(body)
        return len(machine.run().timing_violations)

    narrow = violations(1)
    wide = violations(4)
    assert narrow > 0
    assert wide < narrow


def test_feedback_stall_still_works_with_vliw():
    source = """
        mov r9, 0
        Wait 4
        Pulse {q2}, X180
        Wait 4
        MPG {q2}, 300
        MD {q2}, r7
        add r9, r9, r7
        halt
    """
    machine, result = run_with_width(source, 4)
    assert result.completed
    assert machine.registers.read(9) == 1
    assert result.stall_ns > 1000
