"""Distributed executor fleet: remote workers behind ExecutorBackend.

The acceptance contract of the fleet subsystem (DESIGN.md "Fleet"):

* the wire protocol is length-prefixed, magic-tagged, and version
  checked in both directions — a mismatched peer is refused with a
  ``REJECT`` frame (worker side) or :class:`ProtocolError` (client
  side), never half-spoken to;
* a sweep through ``backend="fleet"`` (and the single-address
  :class:`RemoteBackend`) is bit-identical to the serial backend,
  including failing jobs, which surface the same ``JobError`` type and
  message;
* a SIGKILLed worker daemon maps to :class:`WorkerLost`: retryable
  specs resubmit to a surviving worker and the sweep still lands
  bit-identical, non-retryable specs fail their futures without ever
  hanging ``drain()``;
* a silent (SIGSTOPped) worker is detected by missed heartbeats, not
  just socket death;
* compile caches are content-addressed and shared: workers' disk
  spills union through ``CACHE_LIST``/``GET``/``PUT`` frames.

Set ``REPRO_FLEET_WORKERS=host:port,host:port`` to aim the fleet at
already-running daemons (the CI loopback job does); these tests launch
their own, in-process or as subprocesses, and never rely on the env.
"""

import os
import signal
import socket
import time

import numpy as np
import pytest

from repro.compiler import CompilerOptions, QuantumProgram
from repro.core import MachineConfig
from repro.pulse import PulseCalibration
from repro.service import (
    ExperimentService,
    JobSpec,
    RetryPolicy,
)
from repro.service.fleet import (
    FLEET_WORKERS_ENV,
    FleetBackend,
    PROTOCOL_VERSION,
    RemoteBackend,
    WorkerClient,
    WorkerServer,
    fleet_addresses_from_env,
)
from repro.service.fleet import protocol
from repro.service.fleet.client import parse_address
from repro.service.fleet.launch import launch_worker, stop_worker
from repro.service.fleet.protocol import recv_frame, send_frame
from repro.service.fleet.worker import parse_listen
from repro.utils.errors import (
    ConfigurationError,
    JobError,
    ProtocolError,
    WorkerLost,
)

RETRY = RetryPolicy(max_attempts=3, backoff_s=0.001, max_backoff_s=0.01)


def fast_config(**kwargs):
    kwargs.setdefault("qubits", (2,))
    kwargs.setdefault("trace_enabled", False)
    kwargs.setdefault("calibration", PulseCalibration(kappa=0.7))
    return MachineConfig(**kwargs)


def flip_program():
    p = QuantumProgram("flip", qubits=(2,))
    p.new_kernel("k").prepz(2).x(2).measure(2)
    return p


def flip_spec(seed=None, retry=None, label=None, n_rounds=2, replay=True,
              telemetry=False):
    return JobSpec(config=fast_config(), program=flip_program(),
                   compiler_options=CompilerOptions(n_rounds=n_rounds),
                   seed=seed, retry=retry, label=label, replay=replay,
                   telemetry=telemetry)


def slow_spec(seed, label=None, n_rounds=400, retry=None):
    """Deliberately slow: no replay fast path, so a mid-sweep kill
    reliably catches jobs in flight."""
    return flip_spec(seed=seed, retry=retry, label=label,
                     n_rounds=n_rounds, replay=False)


def addr_of(worker: WorkerServer) -> str:
    return "%s:%d" % worker.address


@pytest.fixture(scope="module")
def worker_pair():
    """Two in-process worker daemons shared across this module's tests."""
    workers = [WorkerServer().start(), WorkerServer().start()]
    yield workers
    for w in workers:
        w.stop()


@pytest.fixture(scope="module")
def fleet_addrs(worker_pair):
    return [addr_of(w) for w in worker_pair]


# -- address parsing and configuration ----------------------------------------


class TestAddresses:
    def test_parse_address_and_listen(self):
        assert parse_address("127.0.0.1:80") == ("127.0.0.1", 80)
        assert parse_listen("0.0.0.0:0") == ("0.0.0.0", 0)
        for bad in ("no-port", ":1234", "host:", "host:abc"):
            with pytest.raises(ProtocolError):
                parse_address(bad)
            with pytest.raises(ProtocolError):
                parse_listen(bad)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(FLEET_WORKERS_ENV,
                           " 127.0.0.1:9001, 127.0.0.1:9002 ,")
        assert fleet_addresses_from_env() == ("127.0.0.1:9001",
                                              "127.0.0.1:9002")
        monkeypatch.delenv(FLEET_WORKERS_ENV)
        assert fleet_addresses_from_env() == ()

    def test_no_addresses_is_a_configuration_error(self, monkeypatch):
        monkeypatch.delenv(FLEET_WORKERS_ENV, raising=False)
        with pytest.raises(ConfigurationError, match="worker"):
            FleetBackend().submit(flip_spec(seed=1))

    def test_unreachable_worker_is_a_configuration_error(self):
        # A port nothing listens on: bind-then-close guarantees it's free.
        probe = socket.create_server(("127.0.0.1", 0))
        dead = "%s:%d" % probe.getsockname()[:2]
        probe.close()
        backend = FleetBackend([dead], connect_timeout=2.0)
        with pytest.raises(ConfigurationError, match="connect"):
            backend.submit(flip_spec(seed=1))


# -- wire protocol ------------------------------------------------------------


class TestProtocol:
    def test_frame_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, protocol.PING, {"rid": 7})
            assert recv_frame(b) == (protocol.PING, {"rid": 7})
        finally:
            a.close()
            b.close()

    def test_bad_magic_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"XXXX" + bytes(4))
            with pytest.raises(ProtocolError, match="magic"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_oversize_frame_rejected_before_send(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(ProtocolError, match="refusing"):
                send_frame(a, protocol.SUBMIT,
                           {"blob": bytes(protocol.MAX_FRAME_BYTES + 1)})
        finally:
            a.close()
            b.close()

    def test_clean_eof_at_frame_boundary_is_eof_not_protocol_error(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(EOFError):
                recv_frame(b)
        finally:
            b.close()

    def test_worker_rejects_version_mismatch(self, worker_pair):
        host, port = worker_pair[0].address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            send_frame(sock, protocol.HELLO,
                       {"version": PROTOCOL_VERSION + 1, "client": "test"})
            kind, body = recv_frame(sock)
        assert kind == protocol.REJECT
        assert body["version"] == PROTOCOL_VERSION

    def test_worker_rejects_non_hello_opening(self, worker_pair):
        host, port = worker_pair[0].address
        with socket.create_connection((host, port), timeout=5.0) as sock:
            send_frame(sock, protocol.PING, {"rid": 0})
            kind, _ = recv_frame(sock)
        assert kind == protocol.REJECT

    def test_client_rejects_version_mismatch(self):
        # A fake worker speaking a future protocol: the client must
        # refuse its welcome.  (Patching PROTOCOL_VERSION in-process
        # would change both sides at once — they share the module.)
        import threading

        listener = socket.create_server(("127.0.0.1", 0))
        addr = "%s:%d" % listener.getsockname()[:2]

        def fake_worker():
            conn, _ = listener.accept()
            with conn:
                recv_frame(conn)  # the client's hello
                send_frame(conn, protocol.WELCOME,
                           {"version": PROTOCOL_VERSION + 1,
                            "worker": "fake"})

        thread = threading.Thread(target=fake_worker, daemon=True)
        thread.start()
        try:
            with pytest.raises(ProtocolError, match="protocol"):
                WorkerClient(addr).connect()
        finally:
            listener.close()
            thread.join(timeout=5.0)

    def test_ping_and_stats_requests(self, worker_pair):
        client = WorkerClient(addr_of(worker_pair[0])).connect()
        try:
            assert client.ping(timeout=10.0)["active"] >= 0
            stats = client.stats(timeout=10.0)
            assert stats["worker"] == worker_pair[0].name
            assert stats["slots"] == 1
            assert "pool" in stats and "cache" in stats
        finally:
            client.close()

    def test_deliberate_close_is_not_a_loss(self, worker_pair):
        losses = []
        client = WorkerClient(addr_of(worker_pair[0]),
                              on_lost=lambda c, r: losses.append(r))
        client.connect()
        client.close()
        time.sleep(0.1)
        assert losses == [] and client.lost_reason is None


# -- bit-identical sweeps through the fleet -----------------------------------


class TestFleetParity:
    def _reference(self, specs):
        with ExperimentService(backend="serial") as svc:
            return svc.run_batch(specs)

    def test_two_worker_sweep_matches_serial(self, fleet_addrs):
        specs = [flip_spec(seed=i + 1, label=f"j{i}") for i in range(8)]
        ref = self._reference(specs)
        with ExperimentService(backend="fleet",
                               fleet_workers=fleet_addrs) as svc:
            got = svc.run_batch(specs)
            stats = svc.stats()["routes"]["quma"]
        for a, b in zip(ref, got):
            assert a.seed == b.seed
            np.testing.assert_array_equal(a.averages, b.averages)
        assert stats["backend"] == "fleet"
        assert sum(w["shipped"] for w in stats["workers"]) == len(specs)

    def test_remote_backend_single_worker_matches_serial(self, worker_pair):
        specs = [flip_spec(seed=i + 1) for i in range(4)]
        ref = self._reference(specs)
        backend = RemoteBackend(addr_of(worker_pair[0]))
        try:
            futures = [backend.submit(s) for s in specs]
            got = [f.result(timeout=60.0) for f in futures]
        finally:
            backend.close()
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(a.averages, b.averages)

    def test_failing_spec_same_error_as_serial(self, fleet_addrs):
        bad = JobSpec(config=fast_config(), asm="bogus q0\n", seed=3,
                      label="bad")
        with ExperimentService(backend="serial") as svc:
            with pytest.raises(JobError) as serial_exc:
                svc.submit(bad).result(timeout=60.0)
        with ExperimentService(backend="fleet",
                               fleet_workers=fleet_addrs) as svc:
            with pytest.raises(JobError) as fleet_exc:
                svc.submit(bad).result(timeout=60.0)
        assert str(fleet_exc.value) == str(serial_exc.value)
        assert fleet_exc.value.exc_type == serial_exc.value.exc_type

    def test_results_carry_worker_telemetry(self, fleet_addrs,
                                            worker_pair):
        with ExperimentService(backend="fleet",
                               fleet_workers=fleet_addrs) as svc:
            sweep = svc.run_batch([flip_spec(seed=i + 1, telemetry=True)
                                   for i in range(4)])
        names = {job.telemetry.worker for job in sweep
                 if job.telemetry is not None}
        assert names <= {w.name for w in worker_pair}
        assert names  # at least one job reported which daemon ran it


# -- sharding -----------------------------------------------------------------


class TestSharding:
    def test_least_outstanding_spreads_a_burst(self, fleet_addrs):
        backend = FleetBackend(fleet_addrs)
        try:
            futures = [backend.submit(slow_spec(i + 1, n_rounds=150))
                       for i in range(6)]
            for f in futures:
                f.result(timeout=120.0)
            shipped = [w["shipped"] for w in backend.stats()["workers"]]
        finally:
            backend.close()
        # 6 sequential submits against 2 idle workers alternate 3/3 —
        # least-outstanding with ties to the lowest index.
        assert sorted(shipped) == [3, 3]


# -- worker loss --------------------------------------------------------------


class TestWorkerLoss:
    def test_sigkill_mid_sweep_recovers_bit_identical(self):
        specs = [slow_spec(i + 1, label=f"r{i}", retry=RETRY)
                 for i in range(8)]
        with ExperimentService(backend="serial") as svc:
            ref = svc.run_batch(specs)
        p1, a1 = launch_worker()
        p2, a2 = launch_worker()
        try:
            with ExperimentService(backend="fleet",
                                   fleet_workers=[a1, a2]) as svc:
                futures = [svc.submit(s) for s in specs]
                time.sleep(0.6)
                os.kill(p1.pid, signal.SIGKILL)
                got = [f.result(timeout=120.0) for f in futures]
                stats = svc.stats()["routes"]["quma"]
        finally:
            stop_worker(p1)
            stop_worker(p2)
        for a, b in zip(ref, got):
            np.testing.assert_array_equal(a.averages, b.averages)
        assert stats["worker_losses"] >= 1
        assert stats["failed"] == 0

    def test_no_retry_death_fails_futures_and_drains(self):
        from repro.service import FaultPlan

        proc, addr = launch_worker()
        # NO_RETRY semantics under test: pin chaos off (a client plan
        # overrides the daemons' ambient env) so the only failure mode
        # in play is the worker's death.
        backend = FleetBackend([addr], faults=FaultPlan(seed=0, rate=0.0))
        try:
            futures = [backend.submit(slow_spec(i + 1, n_rounds=600))
                       for i in range(3)]
            time.sleep(0.4)
            os.kill(proc.pid, signal.SIGKILL)
            outcomes = []
            for f in futures:
                try:
                    f.result(timeout=60.0)
                    outcomes.append("ok")
                except JobError as exc:
                    outcomes.append(exc.exc_type)
            backend.drain(timeout=30.0)
            stats = backend.stats()
        finally:
            backend.close()
            stop_worker(proc)
        assert "WorkerLost" in outcomes
        assert stats["pending"] == 0
        assert stats["failed"] == outcomes.count("WorkerLost")
        # NO_RETRY losses are terminal, not "transiently recoverable":
        # they land in the quarantine report un-exhausted.
        assert all(not entry["exhausted"] for entry in stats["quarantine"])

    def test_heartbeat_detects_silent_worker(self):
        from repro.service import FaultPlan

        proc, addr = launch_worker()
        try:
            backend = FleetBackend([addr], heartbeat_s=0.1,
                                   heartbeat_misses=3,
                                   faults=FaultPlan(seed=0, rate=0.0))
            future = backend.submit(slow_spec(1, n_rounds=3000))
            time.sleep(0.3)
            os.kill(proc.pid, signal.SIGSTOP)  # alive but silent
            with pytest.raises(JobError) as exc:
                future.result(timeout=30.0)
            assert exc.value.exc_type == "WorkerLost"
            assert "silent" in str(exc.value)
            backend.close()
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            stop_worker(proc)

    def test_remote_backend_reconnects_to_restarted_address(self,
                                                            worker_pair):
        # RemoteBackend defaults reconnect_lost=True: a loss re-dials the
        # same address before resolving victims, so a still-listening
        # daemon picks the work straight back up.
        backend = RemoteBackend(addr_of(worker_pair[0]))
        assert backend.address == addr_of(worker_pair[0])
        try:
            first = backend.submit(flip_spec(seed=1, retry=RETRY))
            first.result(timeout=60.0)
            backend._clients[0].mark_lost("synthetic loss for test")
            second = backend.submit(flip_spec(seed=2, retry=RETRY))
            assert second.result(timeout=60.0) is not None
            assert backend.stats()["reconnects"] >= 1
        finally:
            backend.close()


# -- cache sharing ------------------------------------------------------------


class TestCacheSharing:
    def test_sync_unions_spills_across_fleet(self, tmp_path):
        dirs = [tmp_path / name for name in ("w1", "w2", "client")]
        for d in dirs:
            d.mkdir()
        w1 = WorkerServer(cache_dir=dirs[0]).start()
        w2 = WorkerServer(cache_dir=dirs[1]).start()
        backend = FleetBackend([addr_of(w1), addr_of(w2)],
                               cache_dir=dirs[2])
        try:
            # Pin both jobs to w1 by draining between submissions: its
            # spills exist, w2's cache dir is empty.
            backend.submit(flip_spec(seed=1)).result(timeout=60.0)
            report = backend.sync_compile_caches()
            assert report["workers"] == 2
            assert report["entries"] >= 1
            names = {f.name for f in dirs[0].iterdir()}
            assert names  # w1 spilled
            assert {f.name for f in dirs[1].iterdir()} == names  # pushed
            assert {f.name for f in dirs[2].iterdir()} == names  # pulled
        finally:
            backend.close()
            w1.stop()
            w2.stop()

    def test_close_syncs_best_effort(self, tmp_path):
        wdir, cdir = tmp_path / "w", tmp_path / "c"
        wdir.mkdir()
        cdir.mkdir()
        worker = WorkerServer(cache_dir=wdir).start()
        backend = FleetBackend([addr_of(worker)], cache_dir=cdir)
        backend.submit(flip_spec(seed=5)).result(timeout=60.0)
        backend.close()
        worker.stop()
        assert list(cdir.iterdir())  # worker spills arrived at close

    def test_cache_put_refuses_foreign_names(self, worker_pair, tmp_path):
        worker = WorkerServer(cache_dir=tmp_path / "w").start()
        client = WorkerClient(addr_of(worker)).connect()
        try:
            for name in ("../escape.json", "cg_upper-CASE.json", "x" * 300):
                assert not client.cache_put(name, b"{}", timeout=10.0)
            assert client.cache_get("../escape.json", timeout=10.0) is None
        finally:
            client.close()
            worker.stop()


# -- daemon lifecycle and CLI -------------------------------------------------


class TestDaemon:
    def test_launch_worker_announces_bound_address(self):
        proc, addr = launch_worker(slots=2)
        try:
            host, port = parse_address(addr)
            assert host == "127.0.0.1" and port > 0
            client = WorkerClient(addr).connect()
            assert client.welcome["slots"] == 2
            client.close()
        finally:
            stop_worker(proc)

    def test_shutdown_frame_stops_daemon(self):
        proc, addr = launch_worker()
        try:
            client = WorkerClient(addr).connect()
            client.request_shutdown(timeout=10.0)
            client.close()
            assert proc.wait(timeout=15.0) == 0
        finally:
            stop_worker(proc)

    def test_cli_exp_fleet_backend(self, capsys):
        from repro.cli import main

        proc, addr = launch_worker()
        try:
            rc = main(["exp", "rabi", "--backend", "fleet",
                       "--fleet-workers", addr,
                       "--param", "n_rounds=8", "--param",
                       "amplitudes=[0.2, 0.5, 0.8]", "--seed", "7"])
        finally:
            stop_worker(proc)
        out = capsys.readouterr().out
        assert rc == 0
        assert "backend=fleet" in out

    def test_service_stats_roll_up_remote_workers(self, fleet_addrs):
        with ExperimentService(backend="fleet",
                               fleet_workers=fleet_addrs) as svc:
            svc.run_batch([flip_spec(seed=i + 1) for i in range(4)])
            workers = svc.stats()["routes"]["quma"]["workers"]
        assert len(workers) == 2
        for entry in workers:
            assert entry["alive"]
            remote = entry["remote"]
            assert remote["worker"].startswith("worker:")
            assert "pool" in remote and "cache" in remote
