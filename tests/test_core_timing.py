"""Tests for the timing control unit (Section 5.2)."""

import pytest

from repro.core.events import MdEvent, MpgEvent, PulseEvent
from repro.core.timing import EventQueue, TimingControlUnit
from repro.sim import Simulator, TraceRecorder
from repro.utils.errors import QueueOverflow


def make_tcu(capacity=8):
    sim = Simulator()
    tcu = TimingControlUnit(sim, capacity=capacity, trace=TraceRecorder())
    fired = []
    tcu.add_event_queue("pulse", lambda e: fired.append((sim.now, "pulse", e)))
    tcu.add_event_queue("mpg", lambda e: fired.append((sim.now, "mpg", e)))
    tcu.add_event_queue("md", lambda e: fired.append((sim.now, "md", e)))
    return sim, tcu, fired


def pev(label, op="I"):
    return PulseEvent(label=label, uop=0, op_name=op, channel="uop0", qubits=(0,))


def test_events_fire_at_exact_intervals():
    sim, tcu, fired = make_tcu()
    tcu.push_time_point(40000, 1)
    tcu.push_event("pulse", pev(1))
    tcu.push_time_point(4, 2)
    tcu.push_event("pulse", pev(2))
    tcu.start()
    sim.run()
    assert [(t, k) for t, k, _ in fired] == [(200000, "pulse"), (200020, "pulse")]


def test_allxy_label3_fires_mpg_and_md_together():
    """Table 2-4: MPG and MD share timing label 3 and fire at the same
    instant (T_D = 40008 cycles)."""
    sim, tcu, fired = make_tcu()
    for interval, label in [(40000, 1), (4, 2), (4, 3)]:
        tcu.push_time_point(interval, label)
    tcu.push_event("pulse", pev(1))
    tcu.push_event("pulse", pev(2))
    tcu.push_event("mpg", MpgEvent(label=3, qubits=(2,), duration_cycles=300))
    tcu.push_event("md", MdEvent(label=3, qubits=(2,), rd=7))
    tcu.start()
    sim.run()
    label3 = [(t, k) for t, k, _ in fired if t == 40008 * 5]
    assert ("mpg" in [k for _, k in label3]) and ("md" in [k for _, k in label3])


def test_counter_resets_between_intervals():
    sim, tcu, fired = make_tcu()
    tcu.push_time_point(10, 1)
    tcu.push_time_point(10, 2)
    tcu.push_event("pulse", pev(1))
    tcu.push_event("pulse", pev(2))
    tcu.start()
    sim.run()
    assert [t for t, _, _ in fired] == [50, 100]


def test_label_with_no_events_is_harmless():
    sim, tcu, fired = make_tcu()
    tcu.push_time_point(4, 1)
    tcu.push_time_point(4, 2)
    tcu.push_event("pulse", pev(2))
    tcu.start()
    sim.run()
    assert [t for t, _, _ in fired] == [40]
    assert tcu.labels_fired == 2


def test_events_only_fire_on_matching_front_label():
    sim, tcu, fired = make_tcu()
    tcu.push_time_point(4, 1)
    tcu.push_event("pulse", pev(1))
    tcu.push_event("pulse", pev(2))  # queued behind; must not fire at label 1
    tcu.start()
    sim.run(until=100)
    assert len(fired) == 1


def test_not_started_means_nothing_fires():
    sim, tcu, fired = make_tcu()
    tcu.push_time_point(4, 1)
    tcu.push_event("pulse", pev(1))
    sim.run(until=1000)
    assert fired == []
    assert not tcu.started


def test_start_after_queueing():
    sim, tcu, fired = make_tcu()
    tcu.push_time_point(4, 1)
    tcu.push_event("pulse", pev(1))
    sim.at(100, tcu.start)
    sim.run()
    # Counter starts at T_D start: fires 20 ns after start.
    assert [t for t, _, _ in fired] == [120]


def test_underrun_detected_and_fires_immediately():
    sim, tcu, fired = make_tcu()
    tcu.start()
    # Push an interval whose fire time is already past.
    def late_push():
        tcu.push_time_point(1, 1)  # should have fired at t=5
        tcu.push_event("pulse", pev(1))
    sim.at(100, late_push)
    sim.run()
    assert len(tcu.violations) == 1
    assert tcu.violations[0]["late_ns"] == 95
    assert [t for t, _, _ in fired] == [100]


def test_no_underrun_when_queues_stay_ahead():
    sim, tcu, fired = make_tcu()
    tcu.push_time_point(100, 1)
    tcu.push_event("pulse", pev(1))
    tcu.start()

    def push_more():
        tcu.push_time_point(100, 2)
        tcu.push_event("pulse", pev(2))

    sim.at(300, push_more)  # arrives before fire time (500+500)
    sim.run()
    assert tcu.violations == []
    assert [t for t, _, _ in fired] == [500, 1000]


def test_queue_capacity_overflow():
    sim, tcu, _ = make_tcu(capacity=2)
    tcu.push_time_point(1, 1)
    tcu.push_time_point(1, 2)
    with pytest.raises(QueueOverflow):
        tcu.push_time_point(1, 3)


def test_has_space_accounts_all_queues():
    sim, tcu, _ = make_tcu(capacity=2)
    assert tcu.has_space(2, {"pulse": 2})
    tcu.push_event("pulse", pev(1))
    assert tcu.has_space(1, {"pulse": 1})
    assert not tcu.has_space(1, {"pulse": 2})


def test_space_waiters_called_after_fire():
    sim, tcu, _ = make_tcu(capacity=2)
    called = []
    tcu.push_time_point(4, 1)
    tcu.wait_for_space(lambda: called.append(sim.now))
    tcu.start()
    sim.run()
    assert called == [20]


def test_snapshot_format_matches_tables():
    sim, tcu, _ = make_tcu()
    tcu.push_time_point(40000, 1)
    tcu.push_time_point(4, 2)
    tcu.push_event("pulse", pev(1, "I"))
    tcu.push_event("md", MdEvent(label=3, qubits=(2,), rd=7))
    snap = tcu.snapshot()
    # Front of queue at the bottom, as printed in the paper.
    assert snap["timing"] == ["(4, 2)", "(40000, 1)"]
    assert snap["pulse"] == ["(I, 1)"]
    assert snap["md"] == ["(r7, 3)"]


def test_td_cycles_tracks_start():
    sim, tcu, _ = make_tcu()
    sim.at(100, tcu.start)
    sim.run()
    tcu.push_time_point(4, 1)
    sim.run()
    assert tcu.td_cycles() == 4
    assert tcu.td_to_ns(4) == 120


def test_stale_event_dropped_and_recorded():
    """An event for an already-fired label is a program bug: it can never
    fire.  The TCU drops it and records a violation instead of wedging."""
    sim, tcu, fired = make_tcu()
    tcu.push_time_point(4, 1)
    tcu.start()
    sim.run()
    assert tcu.last_fired_label == 1
    tcu.push_event("pulse", pev(1))
    assert len(tcu.event_queues["pulse"]) == 0
    assert any("stale_event" in v for v in tcu.violations)


def test_eventqueue_fire_label_pops_all_matching():
    fired = []
    q = EventQueue("x", 8, fired.append)
    q.push(pev(1))
    q.push(pev(1))
    q.push(pev(2))
    out = q.fire_label(1)
    assert len(out) == 2
    assert len(q) == 1
