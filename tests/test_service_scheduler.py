"""Scheduler: backends, sweeps, per-job seeding, and result parity."""

import numpy as np
import pytest

from repro.compiler import CompilerOptions, QuantumProgram
from repro.core import MachineConfig
from repro.experiments.rabi import rabi_job
from repro.service import (
    ExperimentService,
    JobSpec,
    derive_job_seed,
    grid,
)
from repro.utils.errors import ConfigurationError, ReproError


def flip_program():
    p = QuantumProgram("flip", qubits=(2,))
    p.new_kernel("k").prepz(2).x(2).measure(2)
    return p


def flip_spec(seed=None, n_rounds=2):
    return JobSpec(config=MachineConfig(qubits=(2,), trace_enabled=False),
                   program=flip_program(),
                   compiler_options=CompilerOptions(n_rounds=n_rounds),
                   seed=seed)


def make_rabi(params):
    config = MachineConfig(qubits=(2,), trace_enabled=False)
    return rabi_job(config, 2, params["amplitude"], n_rounds=2)


class TestJobSpec:
    def test_needs_exactly_one_source(self):
        config = MachineConfig(qubits=(2,))
        with pytest.raises(ConfigurationError):
            JobSpec(config=config)
        with pytest.raises(ConfigurationError):
            JobSpec(config=config, program=flip_program(), asm="halt")

    def test_run_seed_defaults_to_config_seed(self):
        assert flip_spec().run_seed == 0
        assert flip_spec(seed=9).run_seed == 9


class TestRunJob:
    def test_returns_populated_result(self):
        service = ExperimentService()
        job = service.run_job(flip_spec())
        assert job.averages.shape == (1,)
        assert job.run.completed
        assert job.s_excited > job.s_ground
        assert 0.8 < job.normalized[0] < 1.2
        assert job.seed == 0
        assert not job.cache_hit and not job.machine_reused

    def test_second_run_hits_cache_and_pool(self):
        service = ExperimentService()
        service.run_job(flip_spec())
        job = service.run_job(flip_spec())
        assert job.cache_hit and job.machine_reused

    def test_pooled_result_identical_to_cold_result(self):
        warm = ExperimentService()
        first = warm.run_job(flip_spec())
        pooled = warm.run_job(flip_spec())
        cold = ExperimentService().run_job(flip_spec())
        assert np.array_equal(first.averages, pooled.averages)
        assert np.array_equal(first.averages, cold.averages)

    def test_timing_violations_raise(self):
        p = QuantumProgram("tight", qubits=(2,))
        k = p.new_kernel("k")
        k.x(2)
        k.x(2)
        k.measure(2)
        spec = JobSpec(
            config=MachineConfig(qubits=(2,), classical_issue_ns=500,
                                 trace_enabled=False),
            program=p)
        with pytest.raises(ReproError):
            ExperimentService().run_job(spec)


class TestUploads:
    def test_upload_jobs_reuse_machines(self):
        service = ExperimentService()
        sweep = service.run_batch([make_rabi({"amplitude": a})
                                   for a in (0.1, 0.3, 0.5)])
        assert sweep.pool_stats["builds"] == 1
        assert sweep.pool_stats["reuses"] == 2
        # Population rises with amplitude on the lower Rabi flank.
        pops = sweep.normalized()[:, 0]
        assert pops[0] < pops[-1]

    def test_rabi_job_preserves_config_fields(self):
        config = MachineConfig(qubits=(2,), f_ssb_hz=-100e6, msmt_cycles=200,
                               trace_enabled=False)
        spec = rabi_job(config, 2, 0.3, 4)
        assert spec.config.f_ssb_hz == -100e6
        assert spec.config.msmt_cycles == 200
        assert spec.config.dcu_points == 1
        assert config.dcu_points == 1  # caller's config untouched

    def test_upload_point_reproducible(self):
        a = ExperimentService().run_job(make_rabi({"amplitude": 0.4}))
        b = ExperimentService().run_job(make_rabi({"amplitude": 0.4}))
        assert np.array_equal(a.averages, b.averages)


class TestSweep:
    def test_grid_is_cartesian_last_axis_fastest(self):
        points = grid(x=(1, 2), y=("a", "b"))
        assert points == [{"x": 1, "y": "a"}, {"x": 1, "y": "b"},
                          {"x": 2, "y": "a"}, {"x": 2, "y": "b"}]

    def test_sweep_attaches_params_and_seeds(self):
        service = ExperimentService()
        sweep = service.run_sweep(make_rabi,
                                  grid(amplitude=(0.1, 0.2)), seed_root=5)
        assert sweep.param_values("amplitude") == [0.1, 0.2]
        assert [j.seed for j in sweep] == [derive_job_seed(5, 0),
                                           derive_job_seed(5, 1)]

    def test_seed_root_reproducible_and_independent(self):
        s1 = ExperimentService().run_sweep(
            make_rabi, grid(amplitude=(0.3, 0.3)), seed_root=5)
        s2 = ExperimentService().run_sweep(
            make_rabi, grid(amplitude=(0.3, 0.3)), seed_root=5)
        s3 = ExperimentService().run_sweep(
            make_rabi, grid(amplitude=(0.3, 0.3)), seed_root=6)
        # Same root: bit-for-bit identical sweep.
        assert np.array_equal(s1.averages(), s2.averages())
        # Same point, different per-job seeds: independent noise.
        assert not np.array_equal(s1[0].averages, s1[1].averages)
        # Different root: different noise.
        assert not np.array_equal(s1.averages(), s3.averages())

    def test_derive_job_seed_stable_values(self):
        # Pinned: the mixing must stay stable across sessions/platforms,
        # or published sweep results stop being reproducible.
        assert derive_job_seed(0, 0) == derive_job_seed(0, 0)
        assert derive_job_seed(0, 0) != derive_job_seed(0, 1)
        assert derive_job_seed(0, 1) != derive_job_seed(1, 0)


class TestProcessBackend:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            ExperimentService(backend="threads")

    def test_process_results_match_serial(self):
        specs = [flip_spec(seed=s) for s in (1, 2, 3)]
        serial = ExperimentService().run_batch(specs)
        with ExperimentService(backend="process", workers=2) as service:
            parallel = service.run_batch(specs)
        assert parallel.backend == "process"
        for s, p in zip(serial, parallel):
            assert np.array_equal(s.averages, p.averages)
            assert s.seed == p.seed
            assert s.run.duration_ns == p.run.duration_ns

    def test_process_sweep_with_uploads_matches_serial(self):
        points = grid(amplitude=(0.2, 0.5))
        serial = ExperimentService().run_sweep(make_rabi, points, seed_root=3)
        with ExperimentService(backend="process", workers=2) as service:
            parallel = service.run_sweep(make_rabi, points, seed_root=3)
        assert np.array_equal(serial.averages(), parallel.averages())

    def test_single_job_batch_stays_in_process(self):
        with ExperimentService(backend="process", workers=2) as service:
            sweep = service.run_batch([flip_spec()])
        # No executor spawned for a single job; pool stats show local work.
        assert service.pool.builds == 1
