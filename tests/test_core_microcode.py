"""Tests for the physical microcode unit and Q control store."""

import pytest

from repro.core import MachineConfig, RegisterFile
from repro.core.microcode import PhysicalMicrocodeUnit, QControlStore
from repro.isa import (
    DEFAULT_OPERATIONS,
    Apply,
    Md,
    Measure,
    Movi,
    Mpg,
    Pulse,
    QCall,
    Wait,
    WaitReg,
)
from repro.utils.errors import MicrocodeError

CNOT_BODY = """
    Pulse {q0}, mY90
    Wait 4
    Pulse {q0, q1}, CZ
    Wait 8
    Pulse {q0}, Y90
    Wait 4
"""


def make_unit(**config_kwargs):
    config = MachineConfig(qubits=(0, 1, 2), **config_kwargs)
    store = QControlStore(DEFAULT_OPERATIONS.copy())
    registers = RegisterFile()
    return PhysicalMicrocodeUnit(config, store, registers), store, registers


def test_qumis_pass_through():
    unit, _, _ = make_unit()
    for instr in (Wait(interval=4), Pulse.single((2,), "I"),
                  Mpg(qubits=(2,), duration=300), Md(qubits=(2,))):
        assert unit.expand(instr) == [instr]


def test_waitreg_reads_register_at_dispatch():
    """Table 5: 'QNopReg r15' becomes 'Wait 40000' by reading r15."""
    unit, _, registers = make_unit()
    registers.write(15, 40000)
    assert unit.expand(WaitReg(rs=15)) == [Wait(interval=40000)]
    registers.write(15, 123)
    assert unit.expand(WaitReg(rs=15)) == [Wait(interval=123)]


def test_waitreg_nonpositive_skipped():
    unit, _, registers = make_unit()
    registers.write(15, 0)
    assert unit.expand(WaitReg(rs=15)) == []


def test_apply_expands_to_pulse_and_wait():
    """Table 5: 'Apply I, q0' -> 'Pulse {q0}, I' + 'Wait 4'."""
    unit, _, _ = make_unit()
    out = unit.expand(Apply(op="I", qubit=0))
    assert out == [Pulse.single((0,), "I"), Wait(interval=4)]


def test_apply_uses_configured_gate_slot():
    unit, _, _ = make_unit(gate_slot_cycles=8)
    out = unit.expand(Apply(op="X180", qubit=1))
    assert out[1] == Wait(interval=8)


def test_measure_expands_to_mpg_md():
    """Table 5: 'Measure q0, r7' -> MPG + MD with the result register."""
    unit, _, _ = make_unit()
    out = unit.expand(Measure(qubit=0, rd=7))
    assert out == [Mpg(qubits=(0,), duration=300), Md(qubits=(0,), rd=7)]


def test_measure_without_register():
    unit, _, _ = make_unit()
    out = unit.expand(Measure(qubit=2))
    assert out[1] == Md(qubits=(2,), rd=None)


def test_cnot_microprogram_algorithm2():
    unit, store, _ = make_unit()
    store.define("CNOT", 2, CNOT_BODY)
    out = unit.expand(QCall(uprog="CNOT", qubits=(1, 2)))
    assert out == [
        Pulse.single((1,), "mY90"),
        Wait(interval=4),
        Pulse.single((1, 2), "CZ"),
        Wait(interval=8),
        Pulse.single((1,), "Y90"),
        Wait(interval=4),
    ]


def test_microprogram_formal_remapping_order():
    unit, store, _ = make_unit()
    store.define("swapargs", 2, "Pulse {q1}, X180\nPulse {q0}, Y180")
    out = unit.expand(QCall(uprog="swapargs", qubits=(0, 2)))
    assert out[0] == Pulse.single((2,), "X180")
    assert out[1] == Pulse.single((0,), "Y180")


def test_unknown_microprogram_raises():
    unit, _, _ = make_unit()
    with pytest.raises(MicrocodeError):
        unit.expand(QCall(uprog="nosuch", qubits=(0,)))


def test_microprogram_arity_checked():
    unit, store, _ = make_unit()
    store.define("CNOT", 2, CNOT_BODY)
    with pytest.raises(MicrocodeError):
        unit.expand(QCall(uprog="CNOT", qubits=(0,)))


def test_body_referencing_undeclared_formal_rejected():
    _, store, _ = make_unit()
    with pytest.raises(MicrocodeError):
        store.define("bad", 1, "Pulse {q1}, X180")


def test_body_with_classical_instruction_rejected():
    _, store, _ = make_unit()
    with pytest.raises(MicrocodeError):
        store.define("bad", 1, "mov r1, 0")


def test_store_lookup_case_insensitive():
    _, store, _ = make_unit()
    store.define("CNOT", 2, CNOT_BODY)
    assert store.lookup("cnot").name == "CNOT"
    assert "CnOt" in store


def test_classical_instruction_not_expandable():
    unit, _, _ = make_unit()
    with pytest.raises(MicrocodeError):
        unit.expand(Movi(rd=0, imm=0))
