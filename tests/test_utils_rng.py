"""Tests for deterministic RNG derivation."""

import numpy as np

from repro.utils import derive_rng


def test_same_seed_same_stream():
    a = derive_rng(42, "readout").random(8)
    b = derive_rng(42, "readout").random(8)
    assert np.array_equal(a, b)


def test_different_streams_differ():
    a = derive_rng(42, "readout").random(8)
    b = derive_rng(42, "jitter").random(8)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = derive_rng(1, "readout").random(8)
    b = derive_rng(2, "readout").random(8)
    assert not np.array_equal(a, b)


def test_stream_parts_namespace():
    a = derive_rng(7, "readout", "q0").random(4)
    b = derive_rng(7, "readout", "q1").random(4)
    assert not np.array_equal(a, b)


def test_generator_passthrough_spawns():
    root = np.random.default_rng(3)
    child = derive_rng(root)
    assert isinstance(child, np.random.Generator)


def test_none_seed_is_deterministic():
    a = derive_rng(None, "x").random(4)
    b = derive_rng(None, "x").random(4)
    assert np.array_equal(a, b)
