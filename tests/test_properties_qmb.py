"""Property tests for QMB/TCU queue invariants under random streams."""

from hypothesis import given, settings, strategies as st

from repro.core import MachineConfig
from repro.core.qmb import QuantumMicroinstructionBuffer
from repro.core.timing import TimingControlUnit
from repro.isa import DEFAULT_OPERATIONS, Md, Mpg, Pulse, Wait
from repro.sim import Simulator

uinstr_strategy = st.one_of(
    st.builds(Wait, interval=st.integers(1, 1000)),
    st.builds(lambda op: Pulse.single((2,), op),
              st.sampled_from(["I", "X180", "X90", "Y90"])),
    st.builds(lambda d: Mpg(qubits=(2,), duration=d), st.integers(1, 400)),
    st.builds(lambda rd: Md(qubits=(2,), rd=rd),
              st.one_of(st.none(), st.integers(0, 31))),
)


def make_qmb(capacity=256):
    sim = Simulator()
    config = MachineConfig(qubits=(2,), queue_capacity=capacity,
                           td_auto_start=False)
    tcu = TimingControlUnit(sim, capacity=capacity)
    for name in ("pulse", "mpg", "md"):
        tcu.add_event_queue(name, lambda e: None)
    return sim, tcu, QuantumMicroinstructionBuffer(tcu, config,
                                                   DEFAULT_OPERATIONS.copy())


@settings(max_examples=50, deadline=None)
@given(stream=st.lists(uinstr_strategy, min_size=1, max_size=40))
def test_labels_strictly_increase_in_timing_queue(stream):
    _, tcu, qmb = make_qmb()
    for uinstr in stream:
        assert qmb.accept(uinstr)
    labels = [tp.label for tp in tcu.timing_queue]
    assert labels == sorted(labels)
    assert len(set(labels)) == len(labels)


@settings(max_examples=50, deadline=None)
@given(stream=st.lists(uinstr_strategy, min_size=1, max_size=40))
def test_event_labels_monotone_within_each_queue(stream):
    _, tcu, qmb = make_qmb()
    for uinstr in stream:
        qmb.accept(uinstr)
    for queue in tcu.event_queues.values():
        labels = [e.label for e in queue.entries]
        assert labels == sorted(labels)


@settings(max_examples=50, deadline=None)
@given(stream=st.lists(uinstr_strategy, min_size=1, max_size=40))
def test_every_event_label_has_a_time_point(stream):
    _, tcu, qmb = make_qmb()
    for uinstr in stream:
        qmb.accept(uinstr)
    point_labels = {tp.label for tp in tcu.timing_queue}
    for queue in tcu.event_queues.values():
        for event in queue.entries:
            assert event.label in point_labels


@settings(max_examples=30, deadline=None)
@given(stream=st.lists(uinstr_strategy, min_size=1, max_size=60))
def test_all_queued_events_eventually_fire(stream):
    """Once T_D starts, every queued event fires and the queues drain."""
    sim, tcu, qmb = make_qmb()
    fired = []
    for queue in tcu.event_queues.values():
        queue.sink = fired.append
    queued = 0
    for uinstr in stream:
        qmb.accept(uinstr)
    queued = sum(len(q) for q in tcu.event_queues.values())
    tcu.start()
    sim.run()
    assert tcu.queues_empty()
    assert len(fired) == queued
    assert tcu.violations == []


@settings(max_examples=30, deadline=None)
@given(stream=st.lists(uinstr_strategy, min_size=1, max_size=30),
       capacity=st.integers(min_value=2, max_value=6))
def test_backpressure_never_loses_or_reorders(stream, capacity):
    """With a tiny capacity, rejected pushes retried after each fire still
    deliver every event exactly once, in order."""
    sim, tcu, qmb = make_qmb(capacity=capacity)
    fired = []
    for queue in tcu.event_queues.values():
        queue.sink = fired.append
    pending = list(stream)
    tcu.start()

    def pump():
        while pending:
            if not qmb.accept(pending[0]):
                tcu.wait_for_space(pump)
                return
            pending.pop(0)

    sim.after(0, pump)
    sim.run()
    assert not pending
    assert tcu.queues_empty()
    fired_labels = [e.label for e in fired]
    assert fired_labels == sorted(fired_labels)
