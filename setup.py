"""Setup shim for environments without the `wheel` package.

Allows `pip install -e . --no-use-pep517 --no-build-isolation` (the legacy
editable path) on machines where PEP 517 editable builds are unavailable.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
